//! Pairwise-mask secure-aggregation simulation.
//!
//! Models the core mechanism of Bonawitz et al. (CCS 2017): every ordered
//! client pair `(i, j)` with `i < j` shares a seed; client `i` **adds** the
//! PRG expansion of that seed to its update while client `j` **subtracts**
//! it. Summing all masked updates cancels every mask, so the server learns
//! only `Σᵢ Uᵢ` — never an individual update.
//!
//! This is exactly the property BaFFLe's design depends on (§I, §VIII):
//! the defense must make its decision from the *aggregated* global model
//! alone. The simulation omits the dropout-recovery machinery (Shamir
//! shares of the seeds) since no experiment requires it; dropouts during
//! *voting* are handled at the feedback-loop layer instead.
//!
//! # Example
//!
//! ```
//! use baffle_fl::secagg::SecAggSession;
//! use baffle_tensor::ops;
//!
//! let updates = vec![vec![1.0, 2.0], vec![3.0, -1.0], vec![0.5, 0.5]];
//! let session = SecAggSession::new(42, 3, 2);
//! let masked: Vec<Vec<f32>> = (0..3).map(|i| session.mask(i, &updates[i])).collect();
//! // No masked update equals its plaintext …
//! assert_ne!(masked[0], updates[0]);
//! // … but the sums agree.
//! let sum = session.aggregate(&masked);
//! let expected = ops::add(&ops::add(&updates[0], &updates[1]), &updates[2]);
//! for (a, b) in sum.iter().zip(&expected) {
//!     assert!((a - b).abs() < 1e-3);
//! }
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One round's secure-aggregation state: the pairwise seeds for a fixed
/// set of participants and a fixed update length.
#[derive(Debug, Clone)]
pub struct SecAggSession {
    round_seed: u64,
    participants: usize,
    len: usize,
}

impl SecAggSession {
    /// Creates a session for `participants` clients exchanging updates of
    /// `len` parameters. `round_seed` stands in for the key agreement of
    /// the real protocol.
    ///
    /// # Panics
    ///
    /// Panics if `participants == 0`.
    pub fn new(round_seed: u64, participants: usize, len: usize) -> Self {
        assert!(participants > 0, "SecAggSession: need at least one participant");
        Self { round_seed, participants, len }
    }

    /// Number of participants in the session.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// The PRG mask shared by the ordered pair `(i, j)`, `i < j`.
    fn pair_mask(&self, i: usize, j: usize) -> Vec<f32> {
        debug_assert!(i < j);
        // Derive a per-pair seed; SplitMix-style mixing keeps pairs distinct.
        let pair_id = (i as u64) << 32 | j as u64;
        let seed = self
            .round_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(pair_id.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let mut rng = StdRng::seed_from_u64(seed);
        (0..self.len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    /// Masks client `client`'s update.
    ///
    /// # Panics
    ///
    /// Panics if `client >= participants` or `update.len() != len`.
    pub fn mask(&self, client: usize, update: &[f32]) -> Vec<f32> {
        assert!(
            client < self.participants,
            "SecAggSession::mask: client {client} out of range for {} participants",
            self.participants
        );
        assert_eq!(
            update.len(),
            self.len,
            "SecAggSession::mask: update length {} != session length {}",
            update.len(),
            self.len
        );
        let mut out = update.to_vec();
        for peer in 0..self.participants {
            if peer == client {
                continue;
            }
            let (lo, hi) = (client.min(peer), client.max(peer));
            let mask = self.pair_mask(lo, hi);
            let sign = if client == lo { 1.0 } else { -1.0 };
            baffle_tensor::ops::axpy(sign, &mask, &mut out);
        }
        out
    }

    /// Sums masked updates; the pairwise masks cancel, yielding `Σᵢ Uᵢ`.
    ///
    /// Large sessions chunk the sum across the worker pool; the
    /// accumulation is elementwise in a fixed client order, so the result
    /// is bit-identical to the serial loop at any thread count (see
    /// `aggregate::scaled_accumulate`).
    ///
    /// # Panics
    ///
    /// Panics if the number of masked updates differs from the session's
    /// participant count (this simulation has no dropout recovery) or the
    /// lengths are inconsistent.
    pub fn aggregate(&self, masked: &[Vec<f32>]) -> Vec<f32> {
        assert_eq!(
            masked.len(),
            self.participants,
            "SecAggSession::aggregate: got {} masked updates for {} participants \
             (dropout recovery is not simulated)",
            masked.len(),
            self.participants
        );
        let mut sum = vec![0.0; self.len];
        crate::aggregate::scaled_accumulate(1.0, masked, &mut sum);
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn updates(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n).map(|i| (0..len).map(|j| (i * len + j) as f32 * 0.1 - 1.0).collect()).collect()
    }

    #[test]
    fn masks_cancel_in_the_sum() {
        let n = 5;
        let len = 17;
        let ups = updates(n, len);
        let session = SecAggSession::new(7, n, len);
        let masked: Vec<Vec<f32>> = (0..n).map(|i| session.mask(i, &ups[i])).collect();
        let sum = session.aggregate(&masked);
        let mut expected = vec![0.0; len];
        for u in &ups {
            baffle_tensor::ops::axpy(1.0, u, &mut expected);
        }
        for (a, b) in sum.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn individual_masked_updates_hide_plaintext() {
        let n = 4;
        let len = 64;
        let ups = updates(n, len);
        let session = SecAggSession::new(99, n, len);
        for (i, u) in ups.iter().enumerate() {
            let m = session.mask(i, u);
            let dist = baffle_tensor::ops::distance(&m, u);
            assert!(dist > 0.5, "client {i}'s mask is too weak: {dist}");
        }
    }

    #[test]
    fn single_participant_has_no_masks() {
        let session = SecAggSession::new(1, 1, 3);
        let u = vec![1.0, 2.0, 3.0];
        assert_eq!(session.mask(0, &u), u);
    }

    #[test]
    fn different_rounds_use_different_masks() {
        let u = vec![0.0; 8];
        let a = SecAggSession::new(1, 2, 8).mask(0, &u);
        let b = SecAggSession::new(2, 2, 8).mask(0, &u);
        assert_ne!(a, b);
    }

    #[test]
    fn masking_is_deterministic_per_session() {
        let u = vec![1.0; 8];
        let s = SecAggSession::new(5, 3, 8);
        assert_eq!(s.mask(1, &u), s.mask(1, &u));
    }

    /// A session large enough to cross the pool fan-out threshold must
    /// sum bit-identically to the serial axpy loop.
    #[test]
    fn large_aggregate_is_bit_identical_to_serial_sum() {
        let n = 4;
        let len = 40_000; // n × len ≫ the chunking threshold
        let ups = updates(n, len);
        let session = SecAggSession::new(3, n, len);
        let masked: Vec<Vec<f32>> = (0..n).map(|i| session.mask(i, &ups[i])).collect();
        let sum = session.aggregate(&masked);
        let mut expected = vec![0.0_f32; len];
        for m in &masked {
            baffle_tensor::ops::axpy(1.0, m, &mut expected);
        }
        for (i, (a, b)) in sum.iter().zip(&expected).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "param {i}: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "dropout recovery")]
    fn missing_update_panics() {
        let session = SecAggSession::new(0, 3, 2);
        let masked = vec![vec![0.0, 0.0]; 2];
        let _ = session.aggregate(&masked);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_client_panics() {
        let session = SecAggSession::new(0, 2, 2);
        let _ = session.mask(5, &[0.0, 0.0]);
    }
}
