//! Regenerates **Figure 2**: per-class error rates of clean vs poisoned
//! global models on the CIFAR-like setting.
//!
//! The figure motivates the validation method (§V): honest round-to-round
//! updates barely move the per-class error rates, while a freshly
//! injected semantic backdoor visibly boosts the error of the source
//! class (and, as a side effect, the wrong arrivals at the target class).
//!
//! This binary runs a stable federated model for several clean rounds,
//! then crafts one model-replacement injection, and prints for every
//! class: the source-focused error of the last clean model, its
//! round-to-round standard deviation across the clean rounds, and the
//! error of the poisoned model.
//!
//! Run with `cargo run --release -p baffle-core --bin fig2_per_class_error`.

use baffle_attack::ModelReplacement;
use baffle_core::exp::{ExpArgs, Table};
use baffle_core::metrics::mean_std;
use baffle_core::{DatasetKind, DefenseMode, Simulation, SimulationConfig};

use baffle_nn::ConfusionMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::from_env();

    // A stable defended-off run gives us the clean model trajectory.
    let mut config = SimulationConfig::cifar_like(args.seed);
    config.defense = DefenseMode::Off;
    config.rounds = if args.fast { 8 } else { 15 };
    config.poison_rounds = vec![];
    let mut sim = Simulation::new(config.clone());

    // Evaluate on the simulation's own held-out test set (the paper
    // evaluates on a fixed test set of the same distribution).
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xF16);
    let eval_data = sim.test_data().clone();
    let classes = eval_data.num_classes();

    // Collect per-class source errors of the global model after each
    // clean round.
    let mut clean_errors: Vec<Vec<f64>> = vec![Vec::new(); classes];
    for _ in 0..config.rounds {
        sim.step();
        let cm = ConfusionMatrix::from_model(
            sim.global_model(),
            eval_data.features(),
            eval_data.labels(),
        );
        for (y, errs) in clean_errors.iter_mut().enumerate() {
            errs.push(cm.source_error(y) as f64);
        }
    }

    // Craft a poisoned model by model replacement from the final state,
    // using data from the *same* synthetic problem.
    let backdoor = *sim.backdoor();
    let attack = ModelReplacement::new(backdoor, 1.0);
    let attacker_clean = sim.generator().generate_excluding(
        &mut rng,
        400,
        backdoor.source_class(),
        backdoor.subgroup().unwrap_or(0),
    );
    let backdoor_train = sim.generator().generate_subgroup(
        &mut rng,
        200,
        backdoor.source_class(),
        backdoor.subgroup().unwrap_or(0),
    );
    let poisoned =
        attack.train_backdoored(sim.global_model(), &attacker_clean, &backdoor_train, &mut rng);
    let poisoned_cm =
        ConfusionMatrix::from_model(&poisoned, eval_data.features(), eval_data.labels());

    let mut table = Table::new(
        &format!(
            "Figure 2 ({:?}): per-class source error, clean vs poisoned \
             (backdoor: class {} subgroup {:?} → class {})",
            DatasetKind::CifarLike,
            backdoor.source_class(),
            backdoor.subgroup(),
            backdoor.target_class()
        ),
        &["class", "clean err (mean)", "clean err (std)", "poisoned err", "poisoned Δ/σ"],
    );
    #[allow(clippy::needless_range_loop)] // y is a class id used for labels too
    for y in 0..classes {
        let (mean, std) = mean_std(&clean_errors[y]);
        let p = poisoned_cm.source_error(y) as f64;
        let sigma = if std > 1e-9 { (p - mean) / std } else { f64::INFINITY };
        let mut marker = String::new();
        if y == backdoor.source_class() {
            marker = " <- source".into();
        } else if y == backdoor.target_class() {
            marker = " <- target".into();
        }
        table.row(vec![
            format!("{y}{marker}"),
            format!("{mean:.4}"),
            format!("{std:.4}"),
            format!("{p:.4}"),
            if sigma.is_finite() { format!("{sigma:+.1}σ") } else { "inf".into() },
        ]);
    }
    table.emit(&args);
}
