//! The coordinating server actor (Algorithm 1, server side).

use crate::message::{HistoryEntry, Message, NodeId};
use crate::transport::Endpoint;
use baffle_attack::voting::Vote;
use baffle_core::{Decision, ModelHistory, QuorumRule, ValidationEngine, Validator};
use baffle_data::Dataset;
use baffle_fl::history_sync::HistorySync;
use baffle_fl::{fedavg, sampling, FlConfig};
use baffle_nn::{wire, Mlp, Model};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Duration;

/// Server-side protocol parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// FL hyperparameters (N, n, λ).
    pub fl: FlConfig,
    /// Validating clients per round.
    pub validators_per_round: usize,
    /// Quorum threshold `q`.
    pub quorum: usize,
    /// How long to wait for updates/votes before proceeding without the
    /// stragglers.
    pub phase_timeout: Duration,
    /// Whether the server casts its own vote (BAFFLE vs BAFFLE-C).
    pub server_votes: bool,
    /// Master seed for client selection.
    pub seed: u64,
    /// Trust-bootstrapping phase (paper §IV-B, "bootstrapping trust
    /// across rounds"): for the first `bootstrap_rounds` rounds,
    /// contributors are sampled only from `bootstrap_trusted` (an
    /// operator-vetted set), so the initial model history is known
    /// clean. Empty = no restriction.
    pub bootstrap_rounds: u64,
    /// The vetted participant set used during bootstrapping.
    pub bootstrap_trusted: Vec<usize>,
}

/// What happened in one protocol round, as observed by the server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerRound {
    /// Round number (1-based).
    pub round: u64,
    /// Whether the aggregated update was integrated.
    pub accepted: bool,
    /// Updates received before the timeout.
    pub updates_received: usize,
    /// Votes received before the timeout (missing votes are implicit
    /// accepts per footnote 1).
    pub votes_received: usize,
    /// Reject votes among them.
    pub reject_votes: usize,
    /// Update submissions discarded at intake: sender not in this
    /// round's sampled contributor set, claimed id not matching the
    /// transport envelope, undecodable payload, or wrong parameter
    /// count. (Stale-round stragglers are silently dropped, not
    /// counted — losing a race is not an intake violation.)
    pub rejected_submissions: usize,
    /// Vote submissions discarded at intake: sender not in this round's
    /// sampled validator set, claimed id not matching the envelope, or a
    /// duplicate vote from an already-counted validator.
    pub rejected_votes: usize,
    /// Bytes of history shipped to validators this round (the §VI-D
    /// overhead, measured).
    pub history_bytes_shipped: usize,
}

/// The server actor: owns the global model, the trusted history and the
/// per-client history-sync bookkeeping.
#[derive(Debug)]
pub struct Server {
    endpoint: Endpoint,
    config: ServerConfig,
    global: Mlp,
    /// Number of parameters of the global model — the only update length
    /// accepted at intake (anything else would panic `fedavg`).
    param_len: usize,
    history: ModelHistory,
    history_entries: VecDeque<HistoryEntry>,
    sync: HistorySync,
    engine: ValidationEngine,
    server_data: Dataset,
    rng: StdRng,
    round: u64,
}

impl Server {
    /// Creates the server actor with an initial (warm-started) global
    /// model. `history_window` is `ℓ + 1`.
    pub fn new(
        endpoint: Endpoint,
        config: ServerConfig,
        initial_model: Mlp,
        history_window: usize,
        validator: Validator,
        server_data: Dataset,
    ) -> Self {
        let mut history = ModelHistory::new(history_window);
        let hist_id = history.push(initial_model.clone());
        let mut sync = HistorySync::new(history_window);
        let first_id = sync.push_accepted();
        // The history's cache ids and the sync protocol's wire ids are
        // assigned in lockstep: both count acceptances from zero.
        debug_assert_eq!(hist_id, first_id);
        let history_entries = VecDeque::from(vec![HistoryEntry {
            id: first_id,
            params: wire::encode_f32(&initial_model.params()),
        }]);
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            endpoint,
            config,
            param_len: initial_model.num_params(),
            global: initial_model,
            history,
            history_entries,
            sync,
            engine: ValidationEngine::new(validator),
            server_data,
            rng,
            round: 0,
        }
    }

    /// The current global model.
    pub fn global_model(&self) -> &Mlp {
        &self.global
    }

    /// Runs one full protocol round and returns what happened.
    pub fn run_round(&mut self) -> ServerRound {
        self.round += 1;
        let round = self.round;
        let n = self.config.fl.clients_per_round();

        // --- Training phase ------------------------------------------------
        let contributors: Vec<usize> =
            if round <= self.config.bootstrap_rounds && !self.config.bootstrap_trusted.is_empty() {
                let pool = &self.config.bootstrap_trusted;
                let k = n.min(pool.len());
                sampling::select_clients(&mut self.rng, pool.len(), k)
                    .into_iter()
                    .map(|i| pool[i])
                    .collect()
            } else {
                sampling::select_clients(&mut self.rng, self.config.fl.num_clients(), n)
            };
        let global_bytes = Bytes::from(wire::encode_f32(&self.global.params()));
        for &c in &contributors {
            self.endpoint.send(
                NodeId(c as u32),
                Message::TrainRequest { round, global: global_bytes.clone() },
            );
        }
        let (updates, rejected_submissions) = self.collect_updates(round, &contributors);
        let updates_received = updates.len();

        // A round with no surviving updates is skipped entirely.
        if updates.is_empty() {
            return ServerRound {
                round,
                accepted: false,
                updates_received: 0,
                votes_received: 0,
                reject_votes: 0,
                rejected_submissions,
                rejected_votes: 0,
                history_bytes_shipped: 0,
            };
        }

        // --- Aggregation ---------------------------------------------------
        // Sort by client id so float summation order is deterministic.
        let mut sorted: Vec<(NodeId, Vec<f32>)> = updates.into_iter().collect();
        sorted.sort_by_key(|(id, _)| *id);
        let update_vecs: Vec<Vec<f32>> = sorted.into_iter().map(|(_, u)| u).collect();
        let candidate_params = fedavg(
            &self.global.params(),
            &update_vecs,
            self.config.fl.global_lr(),
            self.config.fl.num_clients(),
        );
        let mut candidate = self.global.clone();
        candidate.set_params(&candidate_params);

        // --- Validation phase (Algorithm 1) --------------------------------
        let validators = sampling::select_clients(
            &mut self.rng,
            self.config.fl.num_clients(),
            self.config.validators_per_round,
        );
        let candidate_bytes = Bytes::from(wire::encode_f32(&candidate_params));
        let mut history_bytes_shipped = 0usize;
        for &v in &validators {
            let delta: Vec<HistoryEntry> = self
                .sync
                .models_to_send(v)
                .filter_map(|id| self.history_entries.iter().find(|e| e.id == id).cloned())
                .collect();
            history_bytes_shipped += delta.iter().map(|e| e.params.len()).sum::<usize>();
            self.sync.mark_synced(v);
            self.endpoint.send(
                NodeId(v as u32),
                Message::ValidateRequest {
                    round,
                    candidate: candidate_bytes.clone(),
                    history_delta: delta,
                },
            );
        }
        let (mut votes, rejected_votes) = self.collect_votes(round, &validators);
        if self.config.server_votes {
            let outcome = self.engine.validate(
                &candidate,
                self.history.ids(),
                self.history.models(),
                &self.server_data,
            );
            let own = match outcome {
                Ok(verdict) => verdict.vote(),
                Err(_) => Vote::Accept,
            };
            votes.push(own);
        }
        let reject_votes = votes.iter().filter(|v| matches!(v, Vote::Reject)).count();
        let voters = validators.len() + usize::from(self.config.server_votes);
        let rule = QuorumRule::new(voters.max(1), self.config.quorum.min(voters.max(1)))
            .expect("valid quorum");
        let decision = rule.decide(&votes);

        // --- Integration ----------------------------------------------------
        if decision == Decision::Accepted {
            self.global = candidate;
            let hist_id = self.history.push(self.global.clone());
            let id = self.sync.push_accepted();
            debug_assert_eq!(hist_id, id, "history and sync ids must stay in lockstep");
            self.history_entries.push_back(HistoryEntry { id, params: candidate_bytes.clone() });
            if self.history_entries.len() > self.history.capacity() {
                self.history_entries.pop_front();
            }
        }
        for &c in contributors.iter().chain(&validators) {
            self.endpoint.send(
                NodeId(c as u32),
                Message::RoundResult { round, accepted: decision.is_accepted() },
            );
        }

        ServerRound {
            round,
            accepted: decision.is_accepted(),
            updates_received,
            votes_received: votes.len() - usize::from(self.config.server_votes),
            reject_votes,
            rejected_submissions,
            rejected_votes,
            history_bytes_shipped,
        }
    }

    /// Tells every client to exit.
    pub fn shutdown(&self) {
        for c in 0..self.config.fl.num_clients() {
            self.endpoint.send(NodeId(c as u32), Message::Shutdown);
        }
    }

    /// Collects update submissions for `round` until every sampled
    /// contributor answered or the phase timeout expires. Returns the
    /// surviving updates plus the number rejected at intake.
    ///
    /// An update survives only if **all** of these hold — the protocol's
    /// random-sampling defense is void without them:
    ///
    /// - the sender is in this round's sampled contributor set (an
    ///   unsolicited update must not reach FedAvg);
    /// - the claimed `from` matches the transport envelope's sender (no
    ///   impersonating a sampled client);
    /// - the payload decodes to exactly `param_len` floats (a truncated
    ///   update would panic the aggregation — a remote DoS).
    fn collect_updates(
        &self,
        round: u64,
        contributors: &[usize],
    ) -> (HashMap<NodeId, Vec<f32>>, usize) {
        let allowed: HashSet<NodeId> = contributors.iter().map(|&c| NodeId(c as u32)).collect();
        let mut updates = HashMap::new();
        let mut rejected = 0usize;
        let deadline = std::time::Instant::now() + self.config.phase_timeout;
        while updates.len() < contributors.len() {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break;
            }
            match self.endpoint.recv_timeout(remaining) {
                Ok(env) => {
                    if let Message::UpdateSubmission { round: r, from, update } = env.message {
                        if r != round {
                            // Stale-round stragglers are dropped silently.
                            continue;
                        }
                        if from != env.from || !allowed.contains(&from) {
                            rejected += 1;
                            continue;
                        }
                        match wire::decode_f32(&update) {
                            Ok(u) if u.len() == self.param_len => {
                                updates.insert(from, u);
                            }
                            _ => rejected += 1,
                        }
                    }
                }
                Err(_) => break,
            }
        }
        (updates, rejected)
    }

    /// Collects vote submissions for `round` until every sampled
    /// validator voted or the phase timeout expires. Returns the counted
    /// votes plus the number rejected at intake.
    ///
    /// A vote counts only if the sender is in this round's sampled
    /// validator set, the claimed `from` matches the envelope, and the
    /// validator has not voted already — otherwise any node could stuff
    /// the quorum.
    fn collect_votes(&self, round: u64, validators: &[usize]) -> (Vec<Vote>, usize) {
        let allowed: HashSet<NodeId> = validators.iter().map(|&v| NodeId(v as u32)).collect();
        let mut votes = Vec::new();
        let mut rejected = 0usize;
        let mut seen = HashSet::new();
        let deadline = std::time::Instant::now() + self.config.phase_timeout;
        while votes.len() < validators.len() {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break;
            }
            match self.endpoint.recv_timeout(remaining) {
                Ok(env) => {
                    if let Message::VoteSubmission { round: r, from, vote } = env.message {
                        if r != round {
                            continue;
                        }
                        if from != env.from || !allowed.contains(&from) || !seen.insert(from) {
                            rejected += 1;
                            continue;
                        }
                        votes.push(vote);
                    }
                }
                Err(_) => break,
            }
        }
        (votes, rejected)
    }
}
