//! GEMM kernel benchmarks at the shapes the trainer and validator hit.
//!
//! Three paths per shape: the retained naive reference (`serial_naive`,
//! the perf baseline inherited from the seed kernel), the serial
//! cache-blocked kernel (`blocked`), and the dispatching entry point
//! used by `Matrix::matmul` (`auto` — row-banded across the worker pool
//! above the size threshold). Pin the pool with `BAFFLE_THREADS` to
//! separate blocking gains from threading gains.

use baffle_tensor::{gemm, rng as trng};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// (m, k, n): one Dense forward over a training batch, the full-set
/// forward of confusion evaluation, and the square trajectory point.
const SHAPES: &[(usize, usize, usize)] = &[(32, 32, 64), (2000, 32, 64), (256, 256, 256)];

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    for &(m, k, n) in SHAPES {
        let mut rng = StdRng::seed_from_u64(42);
        let a = trng::uniform_matrix(&mut rng, m, k, -1.0, 1.0);
        let b = trng::uniform_matrix(&mut rng, k, n, -1.0, 1.0);
        let id = format!("{m}x{k}x{n}");

        group.bench_function(BenchmarkId::new("serial_naive", &id), |bch| {
            bch.iter(|| {
                let mut out = vec![0.0f32; m * n];
                gemm::naive_nn(m, k, n, black_box(a.as_slice()), black_box(b.as_slice()), &mut out);
                out
            })
        });
        group.bench_function(BenchmarkId::new("blocked", &id), |bch| {
            bch.iter(|| {
                let mut out = vec![0.0f32; m * n];
                gemm::blocked_nn(
                    m,
                    k,
                    n,
                    black_box(a.as_slice()),
                    black_box(b.as_slice()),
                    &mut out,
                );
                out
            })
        });
        group.bench_function(BenchmarkId::new("auto", &id), |bch| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
