//! Local Outlier Factor (LOF) — Breunig, Kriegel, Ng and Sander,
//! *"LOF: identifying density-based local outliers"*, SIGMOD 2000.
//!
//! BaFFLe's validation function (Algorithm 2) flags a global model as
//! suspicious when its error-variation vector is an **LOF outlier**
//! relative to the variation vectors of recently accepted models:
//! `LOF_k(x; N) > 1` indicates that `x` sits in a sparser region than its
//! neighbours and is potentially an outlier.
//!
//! The implementation uses brute-force k-nearest-neighbour search, which
//! is exact and more than fast enough for the reference-set sizes BaFFLe
//! uses (a look-back window of 10–30 vectors in 2·|Y| dimensions).
//!
//! # Example
//!
//! ```
//! use baffle_lof::lof_against;
//!
//! // A tight cluster of reference points …
//! let refs: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32 * 0.01, 0.0]).collect();
//! // … a query inside the cluster is not an outlier,
//! let inlier = lof_against(&[0.05, 0.0], &refs, 3).unwrap();
//! // … a query far away is.
//! let outlier = lof_against(&[5.0, 5.0], &refs, 3).unwrap();
//! assert!(inlier < 2.0);
//! assert!(outlier > 10.0);
//! ```

mod model;

pub use model::LofModel;

/// Error returned when a LOF computation is impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LofError {
    /// The reference set has fewer than two points, so no point has a
    /// neighbourhood to compare against.
    NotEnoughReferences {
        /// Number of reference points provided.
        got: usize,
    },
    /// `k` was zero.
    ZeroK,
    /// The query's dimensionality differs from the reference points'.
    DimensionMismatch {
        /// Query dimensionality.
        query: usize,
        /// Reference dimensionality.
        reference: usize,
    },
}

impl std::fmt::Display for LofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LofError::NotEnoughReferences { got } => {
                write!(f, "LOF needs at least 2 reference points, got {got}")
            }
            LofError::ZeroK => write!(f, "LOF neighbourhood size k must be at least 1"),
            LofError::DimensionMismatch { query, reference } => {
                write!(f, "query dimension {query} does not match reference dimension {reference}")
            }
        }
    }
}

impl std::error::Error for LofError {}

/// Computes `LOF_k(query; refs)` — the outlier factor of `query` with
/// respect to the reference set, as used in Algorithm 2 of the paper.
///
/// `k` is clamped to `refs.len() - 1` so a small look-back window never
/// makes the computation ill-posed (the paper requires `2 ≤ k ≤ ℓ` and
/// sets `k = ⌈ℓ/2⌉`).
///
/// # Errors
///
/// Returns [`LofError`] if `refs` has fewer than two points, `k == 0`, or
/// dimensions mismatch.
pub fn lof_against(query: &[f32], refs: &[Vec<f32>], k: usize) -> Result<f64, LofError> {
    LofModel::fit(refs.to_vec(), k)?.score(query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        assert!(LofError::ZeroK.to_string().contains("at least 1"));
        assert!(LofError::NotEnoughReferences { got: 1 }.to_string().contains("got 1"));
        assert!(LofError::DimensionMismatch { query: 2, reference: 3 }
            .to_string()
            .contains("does not match"));
    }

    #[test]
    fn lof_against_rejects_small_reference_sets() {
        assert!(matches!(
            lof_against(&[0.0], &[vec![0.0]], 1),
            Err(LofError::NotEnoughReferences { got: 1 })
        ));
    }
}
