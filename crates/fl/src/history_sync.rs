//! Incremental history shipping (paper §VI-D), with acknowledgements.
//!
//! The feedback loop requires each validating client to hold the last
//! `ℓ+1` accepted global models. Shipping the full history every time a
//! client is selected costs `(ℓ+1) · |model|` bytes; but a client that
//! was selected recently already holds most of the window, so the server
//! only needs to send the models **accepted since the client's last
//! sync**. The paper estimates this caps steady-state traffic at about
//! two model-equivalents per selection; [`HistorySync`] implements the
//! bookkeeping and makes the estimate measurable.
//!
//! # Acknowledged advancement
//!
//! On a lossy link the server cannot assume a shipped delta arrived: if
//! it advanced a client's sync point at ship time and the message was
//! dropped, every later delta would skip the lost models and the client
//! would hold a **permanently gapped** window. The bookkeeping is
//! therefore a two-step handshake:
//!
//! 1. [`HistorySync::mark_shipped`] records the attempted sync point
//!    without committing it;
//! 2. [`HistorySync::ack`] commits it once the server hears back from
//!    the client for that round (a vote or an abstention both prove the
//!    request arrived).
//!
//! A delta that vanishes in flight is simply re-sent at the client's
//! next selection, because the committed sync point never moved.
//! [`HistorySync::reset`] drops a client's sync state entirely — used
//! when a client declares its window unusable (crash/restart, gapped
//! cache) so the next selection re-ships the full window.

use std::collections::HashMap;

/// Monotone identifier of an accepted global model.
pub type ModelId = u64;

/// Server-side bookkeeping for incremental history shipping.
///
/// # Example
///
/// ```
/// use baffle_fl::history_sync::HistorySync;
///
/// let mut sync = HistorySync::new(3); // history window ℓ+1 = 3
/// for _ in 0..5 {
///     sync.push_accepted();
/// }
/// // A fresh client needs the whole window …
/// assert_eq!(sync.models_to_send(7).count(), 3);
/// sync.mark_shipped(7);
/// sync.ack(7); // the client answered: the delta arrived
/// // … but after one more accepted round, only the newest model.
/// sync.push_accepted();
/// assert_eq!(sync.models_to_send(7).count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HistorySync {
    window: usize,
    next_id: ModelId,
    /// Committed sync points: the client is known to hold everything
    /// below this id (within the window).
    synced_up_to: HashMap<usize, ModelId>,
    /// Shipped-but-unacknowledged sync points. An entry here is
    /// committed by [`HistorySync::ack`] and discarded by
    /// [`HistorySync::reset`]; a stale entry (the client never answered)
    /// is simply overwritten at its next shipment.
    in_flight: HashMap<usize, ModelId>,
}

impl HistorySync {
    /// Creates the bookkeeping for a history window of `window = ℓ+1`
    /// models.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "HistorySync: window must be positive");
        Self { window, next_id: 0, synced_up_to: HashMap::new(), in_flight: HashMap::new() }
    }

    /// Records that a new global model was accepted, returning its id.
    pub fn push_accepted(&mut self) -> ModelId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Number of models accepted so far.
    pub fn accepted(&self) -> u64 {
        self.next_id
    }

    /// The history window size (`ℓ + 1`).
    pub fn window(&self) -> usize {
        self.window
    }

    /// The current history window as model ids (oldest first).
    pub fn window_ids(&self) -> std::ops::Range<ModelId> {
        let lo = self.next_id.saturating_sub(self.window as u64);
        lo..self.next_id
    }

    /// The model ids that must be sent to `client` so it holds the full
    /// current window: the part of the window it is not **confirmed** to
    /// have seen. Unacknowledged shipments do not shrink this — a delta
    /// that may have been lost is re-sent.
    pub fn models_to_send(&self, client: usize) -> std::ops::Range<ModelId> {
        let window = self.window_ids();
        let seen = self.synced_up_to.get(&client).copied().unwrap_or(0);
        seen.max(window.start)..window.end
    }

    /// The committed sync point for `client`, if any: the id below which
    /// the client is confirmed to hold everything (within the window).
    /// A committed point below [`HistorySync::window_ids`]`.start` means
    /// the client has been absent so long that models it never saw were
    /// evicted. No repair is needed — [`HistorySync::models_to_send`]
    /// clamps to the window start, so such a client is simply shipped
    /// the full window — but the condition is worth counting: it marks
    /// a full-window re-ship caused by long absence.
    pub fn sync_point(&self, client: usize) -> Option<ModelId> {
        self.synced_up_to.get(&client).copied()
    }

    /// Records that the full current window was just shipped to
    /// `client`, without committing the sync point. Call
    /// [`HistorySync::ack`] once the client proves receipt.
    pub fn mark_shipped(&mut self, client: usize) {
        self.in_flight.insert(client, self.next_id);
    }

    /// Commits `client`'s most recent shipment: the client answered, so
    /// the delta arrived. Returns `true` if a shipment was pending.
    pub fn ack(&mut self, client: usize) -> bool {
        match self.in_flight.remove(&client) {
            Some(id) => {
                self.synced_up_to.insert(client, id);
                true
            }
            None => false,
        }
    }

    /// Forgets everything about `client`'s sync state, so its next
    /// selection re-ships the full window. Used when the client declares
    /// its cached window unusable (it crashed and restarted, or its
    /// cache is gapped after losses).
    pub fn reset(&mut self, client: usize) {
        self.synced_up_to.remove(&client);
        self.in_flight.remove(&client);
    }

    /// Sets `client`'s committed sync point directly, bypassing the
    /// ship/ack handshake. This is the WAL-replay path: a recovering
    /// server re-applies the commits a journaled round produced without
    /// re-enacting the shipments that earned them. Outside replay the
    /// handshake ([`HistorySync::mark_shipped`] + [`HistorySync::ack`])
    /// is the only safe way to advance a point.
    pub fn commit(&mut self, client: usize, id: ModelId) {
        self.synced_up_to.insert(client, id);
    }

    /// Ship-and-commit in one step — for loss-free simulation paths
    /// where delivery is guaranteed and no acknowledgement exists.
    pub fn mark_synced(&mut self, client: usize) {
        self.mark_shipped(client);
        self.ack(client);
    }

    /// Bytes needed to bring `client` up to date, given a serialized
    /// model size.
    pub fn bytes_to_send(&self, client: usize, model_bytes: usize) -> usize {
        self.models_to_send(client).count() * model_bytes
    }

    /// The committed sync points, sorted by client — for checkpointing.
    /// In-flight shipments are deliberately excluded: an unacknowledged
    /// delta must be treated as lost across a restore, which the
    /// re-shipping logic already handles.
    pub fn committed(&self) -> Vec<(usize, ModelId)> {
        let mut out: Vec<(usize, ModelId)> =
            self.synced_up_to.iter().map(|(&c, &id)| (c, id)).collect();
        out.sort_unstable();
        out
    }

    /// Rebuilds the bookkeeping from checkpointed state (see
    /// [`HistorySync::committed`]).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn restore(
        window: usize,
        next_id: ModelId,
        committed: impl IntoIterator<Item = (usize, ModelId)>,
    ) -> Self {
        assert!(window > 0, "HistorySync: window must be positive");
        Self {
            window,
            next_id,
            synced_up_to: committed.into_iter().collect(),
            in_flight: HashMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_client_needs_full_window() {
        let mut sync = HistorySync::new(21);
        for _ in 0..100 {
            sync.push_accepted();
        }
        assert_eq!(sync.models_to_send(3).count(), 21);
    }

    #[test]
    fn early_history_smaller_than_window() {
        let mut sync = HistorySync::new(21);
        for _ in 0..5 {
            sync.push_accepted();
        }
        assert_eq!(sync.models_to_send(0).count(), 5);
    }

    #[test]
    fn recently_synced_client_gets_only_the_delta() {
        let mut sync = HistorySync::new(21);
        for _ in 0..50 {
            sync.push_accepted();
        }
        sync.mark_synced(9);
        for _ in 0..2 {
            sync.push_accepted();
        }
        assert_eq!(sync.models_to_send(9).count(), 2);
    }

    #[test]
    fn long_absent_client_is_capped_at_the_window() {
        let mut sync = HistorySync::new(10);
        sync.push_accepted();
        sync.mark_synced(1);
        for _ in 0..500 {
            sync.push_accepted();
        }
        // 500 models passed, but only the current window matters.
        assert_eq!(sync.models_to_send(1).count(), 10);
    }

    #[test]
    fn unacknowledged_shipment_is_resent() {
        let mut sync = HistorySync::new(8);
        for _ in 0..5 {
            sync.push_accepted();
        }
        let first = sync.models_to_send(4);
        sync.mark_shipped(4);
        // The delta vanished in flight: the client never answered, so
        // the next selection must re-ship exactly the same models (plus
        // anything accepted since).
        assert_eq!(sync.models_to_send(4), first.clone());
        sync.push_accepted();
        assert_eq!(sync.models_to_send(4), first.start..6);
    }

    #[test]
    fn ack_commits_the_latest_shipment() {
        let mut sync = HistorySync::new(8);
        for _ in 0..5 {
            sync.push_accepted();
        }
        sync.mark_shipped(2);
        assert!(sync.ack(2), "a pending shipment must acknowledge");
        assert_eq!(sync.models_to_send(2).count(), 0);
        assert!(!sync.ack(2), "double-ack has nothing to commit");
        // An ack with no shipment at all is a no-op.
        assert!(!sync.ack(7));
        assert_eq!(sync.models_to_send(7).count(), 5);
    }

    #[test]
    fn reset_forces_a_full_window_reship() {
        let mut sync = HistorySync::new(4);
        for _ in 0..10 {
            sync.push_accepted();
        }
        sync.mark_synced(3);
        assert_eq!(sync.models_to_send(3).count(), 0);
        // The client restarted (or reported a gapped cache): everything
        // it held is gone, so the full window must go out again.
        sync.reset(3);
        assert_eq!(sync.models_to_send(3), sync.window_ids());
        assert_eq!(sync.models_to_send(3).count(), 4);
    }

    #[test]
    fn reset_discards_in_flight_shipments_too() {
        let mut sync = HistorySync::new(4);
        for _ in 0..6 {
            sync.push_accepted();
        }
        sync.mark_shipped(1);
        sync.reset(1);
        // A late ack for the pre-reset shipment must not resurrect it.
        assert!(!sync.ack(1));
        assert_eq!(sync.models_to_send(1), sync.window_ids());
    }

    #[test]
    fn sync_point_reports_eviction_lag() {
        let mut sync = HistorySync::new(4);
        for _ in 0..4 {
            sync.push_accepted();
        }
        assert_eq!(sync.sync_point(2), None, "never-synced client has no point");
        sync.mark_synced(2);
        assert_eq!(sync.sync_point(2), Some(4));
        // 6 more accepted models push the window past the sync point.
        for _ in 0..6 {
            sync.push_accepted();
        }
        let point = sync.sync_point(2).unwrap();
        assert!(point < sync.window_ids().start, "point {point} must predate the window");
        sync.reset(2);
        assert_eq!(sync.sync_point(2), None);
    }

    #[test]
    fn restore_round_trips_committed_state() {
        let mut sync = HistorySync::new(5);
        for _ in 0..9 {
            sync.push_accepted();
        }
        sync.mark_synced(0);
        sync.push_accepted();
        sync.mark_synced(4);
        sync.mark_shipped(6); // unacked: must NOT survive the round trip
        let restored = HistorySync::restore(sync.window(), sync.accepted(), sync.committed());
        for c in [0, 4, 6, 9] {
            assert_eq!(
                restored.models_to_send(c),
                sync.models_to_send(c),
                "client {c} diverged after restore"
            );
        }
        assert!(!restored.ack(6), "in-flight state is dropped across restore");
    }

    #[test]
    fn commit_sets_the_point_without_a_handshake() {
        let mut sync = HistorySync::new(5);
        for _ in 0..8 {
            sync.push_accepted();
        }
        // WAL replay: re-apply a journaled commit directly.
        sync.commit(3, 6);
        assert_eq!(sync.sync_point(3), Some(6));
        assert_eq!(sync.models_to_send(3), 6..8);
        assert!(!sync.ack(3), "commit leaves nothing in flight");
    }

    #[test]
    fn restore_with_no_committed_points_matches_a_fresh_sync() {
        // Empty window of commits: every client is unknown and gets the
        // full (possibly empty) window.
        let mut restored = HistorySync::restore(4, 0, std::iter::empty());
        assert_eq!(restored.accepted(), 0);
        assert_eq!(restored.window_ids(), 0..0);
        assert_eq!(restored.models_to_send(0).count(), 0);
        // And it keeps behaving like a fresh instance afterwards.
        restored.push_accepted();
        assert_eq!(restored.models_to_send(7), 0..1, "first accepted model ships to everyone");
    }

    #[test]
    fn restore_with_a_single_entry_window_survives() {
        // Window of one (ℓ = 0): the degenerate minimum the constructor
        // allows. Only the newest model ever ships.
        let restored = HistorySync::restore(1, 5, [(2usize, 5u64)]);
        assert_eq!(restored.window_ids(), 4..5);
        assert_eq!(restored.models_to_send(2).count(), 0, "client 2 holds the whole window");
        assert_eq!(restored.models_to_send(9), 4..5, "strangers get the single-model window");
    }

    #[test]
    fn restore_where_the_oldest_window_entry_equals_the_committed_point() {
        // The eviction boundary: the client's committed point lands
        // exactly on the oldest surviving window entry. Nothing the
        // client holds was evicted, so this must NOT count as an
        // eviction lag (`sync_point < window start`) and the delta must
        // start exactly at the point — no full-window re-ship.
        let window = 4;
        let next = 10;
        let restored = HistorySync::restore(window, next, [(3usize, 6u64)]);
        assert_eq!(restored.window_ids(), 6..10);
        let point = restored.sync_point(3).unwrap();
        assert_eq!(point, restored.window_ids().start, "point sits on the boundary");
        assert!(point >= restored.window_ids().start, "boundary is not eviction lag");
        assert_eq!(restored.models_to_send(3), 6..10, "delta starts exactly at the point");
    }

    #[test]
    fn bytes_accounting_multiplies_by_model_size() {
        let mut sync = HistorySync::new(4);
        for _ in 0..4 {
            sync.push_accepted();
        }
        assert_eq!(sync.bytes_to_send(0, 1000), 4000);
        sync.mark_synced(0);
        sync.push_accepted();
        assert_eq!(sync.bytes_to_send(0, 1000), 1000);
    }

    #[test]
    fn steady_state_cost_matches_paper_estimate() {
        // Paper §VI-D: with 1/10 selection probability per round and a
        // 20-round window, a client re-selected within the window only
        // downloads the models accepted since — on average ≈ 10 models
        // per selection (selection gap is geometric with mean 10).
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut sync = HistorySync::new(21);
        let clients = 100;
        let mut sent = 0usize;
        let mut selections = 0usize;
        for _ in 0..2_000 {
            sync.push_accepted();
            for c in 0..clients {
                if rng.gen_bool(0.1) {
                    sent += sync.models_to_send(c).count();
                    sync.mark_synced(c);
                    selections += 1;
                }
            }
        }
        let avg = sent as f64 / selections as f64;
        assert!(
            (6.0..14.0).contains(&avg),
            "steady-state models per selection = {avg} (expected ≈ 10, well below the 21 full window)"
        );
    }
}
