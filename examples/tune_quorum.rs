//! Tunes the quorum threshold for a deployment, the way §IV-B and §VI-C
//! of the paper prescribe:
//!
//! 1. run the system against adaptive injections and *measure* ρ — the
//!    fraction of honest validators that flag a poisoned model;
//! 2. plug ρ into the paper's formulas for the recommended quorum
//!    `q = ρ·(n − n_M)` and the tolerable number of malicious clients
//!    `n_M < (1 − ρ̄)·n/(2 − ρ̄)`.
//!
//! ```sh
//! cargo run --release --example tune_quorum
//! ```

use baffle::core::feedback::{max_tolerable_malicious, quorum_bounds, recommended_quorum};
use baffle::core::{AttackKind, Simulation, SimulationConfig};

fn main() {
    // Measure ρ on the miniature CIFAR-like scenario with adaptive
    // injections (the hardest to flag).
    let validators = 6;
    let mut rhos = Vec::new();
    for seed in [5, 15, 25] {
        let mut config = SimulationConfig::cifar_like_small(seed);
        config.attack = AttackKind::Adaptive;
        config.poison_rounds = vec![5, 7, 9];
        config.validators_per_round = validators;
        let mut sim = Simulation::new(config);
        let report = sim.run();
        if let Some(rho) = report.estimate_rho(validators) {
            rhos.push(rho);
        }
    }
    let rho = rhos.iter().sum::<f64>() / rhos.len().max(1) as f64;
    println!("measured ρ over {} runs: {rho:.2}", rhos.len());

    // The §IV-B calculus.
    let n = validators;
    for n_m in 0..=2 {
        match quorum_bounds(n, n_m) {
            Some((lo, hi)) => {
                let q = recommended_quorum(n, n_m, rho).clamp(lo, hi);
                println!(
                    "n = {n} validators, n_M = {n_m} malicious: feasible q ∈ [{lo}, {hi}], \
                     recommended q = {q}"
                );
            }
            None => println!("n = {n}, n_M = {n_m}: no feasible quorum (no honest majority)"),
        }
    }

    // §VI-C: how many malicious clients the measured ρ tolerates. The
    // paper's formula uses the *erring* fraction ρ̄ = 1 − ρ.
    let tolerable = max_tolerable_malicious(n, 1.0 - rho);
    println!(
        "with ρ = {rho:.2}, the deployment tolerates n_M < {tolerable:.2} malicious validators \
         per round"
    );
}
