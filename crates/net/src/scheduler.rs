//! Event-driven client scheduler: thousands of client state machines
//! multiplexed over one inbound queue and the shared worker pool.
//!
//! The thread-per-client deployment path caps out at a few hundred
//! nodes — every registered client costs an OS thread and a channel,
//! even though only the sampled few-hundred do any work in a given
//! round. The scheduler inverts that: all clients are plain
//! [`Client`] state machines owned by **one** scheduler thread, their
//! inbound traffic arrives on a single [`MuxEndpoint`] channel, and
//! each drained batch is dispatched to [`baffle_tensor::pool`] workers
//! — one task per client with pending events. Idle clients cost a few
//! hundred bytes of state, nothing else.
//!
//! # Determinism
//!
//! Results are bit-identical to the threaded path because nothing a
//! client computes depends on scheduling: every machine owns its RNG
//! stream and history cache, [`baffle_tensor::pool::parallel_map`]
//! preserves input order, batches preserve per-client delivery order,
//! and the server sorts updates by client id before aggregating (votes
//! are order-free counts). The equivalence test in
//! `crates/net/tests/scheduler.rs` pins this down.
//!
//! # Crash / restart mapping
//!
//! The fault plan's scripted events keep their thread-path semantics:
//!
//! - **crash** — [`SchedulerHandle::crash`] detaches the id (subsequent
//!   sends become unroutable, as after `Network::disconnect`), drains
//!   and dispatches whatever was already delivered (a threaded actor
//!   likewise drains its buffered channel before its `recv` errors),
//!   then drops the state machine and banks its [`ClientReport`];
//! - **restart** — [`SchedulerHandle::restart`] attaches the id afresh
//!   and builds a **new** machine via the factory, with an empty
//!   history cache, exactly like a rejoining process;
//! - **rendezvous** — [`SchedulerHandle::rendezvous`] drains and
//!   dispatches everything already delivered, giving the round driver a
//!   quiesce barrier (standby promotion runs one between tearing down
//!   the crashed primary's route and registering its replacement).
//!
//! All commands are synchronous (the call returns only after the
//! scheduler has applied them), so a round driver can order them
//! against round boundaries the way the threaded path orders
//! `disconnect`/`register` calls.

use crate::client::{Client, ClientReport};
use crate::message::NodeId;
use crate::transport::{Network, Outbox};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;

/// Builds a fresh state machine for a node id — called at launch for
/// every initial id and again on every restart.
pub type ClientFactory = Box<dyn FnMut(NodeId, Outbox) -> Client + Send>;

enum Command {
    Crash { id: NodeId, ack: Sender<bool> },
    Restart { id: NodeId, ack: Sender<()> },
    Rendezvous { ack: Sender<()> },
    Finish,
}

/// Control handle for a running scheduler. Dropping it without
/// [`SchedulerHandle::join`] detaches the scheduler thread (it exits
/// once every machine has shut down).
pub struct SchedulerHandle {
    commands: Sender<Command>,
    thread: std::thread::JoinHandle<Vec<ClientReport>>,
}

impl SchedulerHandle {
    /// Spawns the scheduler thread: attaches every id in `ids` to a
    /// fresh [`MuxEndpoint`] on `network`, builds its machine via
    /// `factory`, and starts draining events. Every id is routable
    /// before this returns — same guarantee as the thread-per-client
    /// path, which registers all endpoints before round 1.
    pub fn launch(
        network: &Network,
        ids: Vec<NodeId>,
        mut factory: ClientFactory,
    ) -> SchedulerHandle {
        let mux = network.register_mux();
        // Attach on the caller thread: the round driver starts sending
        // the moment `launch` returns, and a route created later inside
        // the scheduler thread would race those sends into the
        // unroutable count. Machines are built on the scheduler thread
        // (construction is the slow part at 10k+ clients); traffic for
        // a routed-but-not-yet-built id just queues in the mux until
        // the run loop drains it.
        let attached: Vec<(NodeId, Outbox)> =
            ids.into_iter().map(|id| (id, mux.attach(id))).collect();
        let (cmd_tx, cmd_rx) = unbounded();
        let thread = std::thread::Builder::new()
            .name("baffle-scheduler".into())
            .spawn(move || {
                let mut machines: HashMap<NodeId, Client> =
                    attached.into_iter().map(|(id, outbox)| (id, factory(id, outbox))).collect();
                let mut reports = Vec::new();
                run_loop(&mux, &cmd_rx, &mut factory, &mut machines, &mut reports);
                reports
            })
            .expect("spawn baffle scheduler");
        SchedulerHandle { commands: cmd_tx, thread }
    }

    /// Crash-stops `id`: already-delivered events are still processed
    /// (threaded actors drain their buffered channel too), then the
    /// machine is dropped and its report banked. Returns whether the id
    /// had a live machine. Blocks until applied.
    pub fn crash(&self, id: NodeId) -> bool {
        let (ack, done) = unbounded();
        if self.commands.send(Command::Crash { id, ack }).is_err() {
            panic!("scheduler thread gone before crash({id}) was sent");
        }
        done.recv().unwrap_or_else(|_| {
            panic!(
                "scheduler thread panicked while applying crash({id}) — \
                 join() resurfaces its panic payload"
            )
        })
    }

    /// Restarts `id` as a fresh machine (empty history cache), exactly
    /// like a rejoining process. Blocks until applied.
    ///
    /// # Panics
    ///
    /// The scheduler panics if `id` is still attached (crash it first).
    pub fn restart(&self, id: NodeId) {
        let (ack, done) = unbounded();
        if self.commands.send(Command::Restart { id, ack }).is_err() {
            panic!("scheduler thread gone before restart({id}) was sent");
        }
        done.recv().unwrap_or_else(|_| {
            panic!(
                "scheduler thread panicked while applying restart({id}) — \
                 join() resurfaces its panic payload"
            )
        });
    }

    /// Quiesces the scheduler: drains and dispatches every event already
    /// delivered to the mux, then returns. Standby promotion uses this
    /// as its barrier — after the crashed primary's route is torn down
    /// and before the standby takes over the `SERVER` id, the driver
    /// rendezvouses so that any client work already in flight has fully
    /// run (its replies book against the dead route as unroutable
    /// instead of racing the route swap). Blocks until applied.
    pub fn rendezvous(&self) {
        let (ack, done) = unbounded();
        if self.commands.send(Command::Rendezvous { ack }).is_err() {
            panic!("scheduler thread gone before rendezvous was sent");
        }
        done.recv().unwrap_or_else(|_| {
            panic!(
                "scheduler thread panicked while applying rendezvous — \
                 join() resurfaces its panic payload"
            )
        });
    }

    /// Waits for every remaining machine to shut down (each breaks on
    /// its [`crate::message::Message::Shutdown`]) and returns all banked
    /// reports — one per machine incarnation, in exit order.
    pub fn join(self) -> Vec<ClientReport> {
        let _ = self.commands.send(Command::Finish);
        self.thread.join().expect("scheduler thread panicked")
    }
}

fn run_loop(
    mux: &crate::transport::MuxEndpoint,
    commands: &Receiver<Command>,
    factory: &mut ClientFactory,
    machines: &mut HashMap<NodeId, Client>,
    reports: &mut Vec<ClientReport>,
) {
    let mut finishing = false;
    loop {
        // Apply queued commands first: the round driver issues them at
        // round boundaries and blocks on the ack, so there is never a
        // command racing protocol traffic for the same id.
        while let Ok(cmd) = commands.try_recv() {
            apply(cmd, mux, factory, machines, reports, &mut finishing);
        }
        if finishing && machines.is_empty() {
            return;
        }

        // Batch-drain the shared inbox, then dispatch. Draining
        // everything queued before dispatching maximises the fan-out:
        // one pool task per client with pending events.
        let mut batch = Vec::new();
        while let Some(env) = mux.try_recv() {
            batch.push(env);
        }
        if batch.is_empty() {
            // Nothing ready: block until an envelope or a command
            // arrives. The mux channel can never disconnect (the mux
            // holds a sender), so no error arm is needed for it.
            crossbeam::select! {
                recv(mux.raw_receiver()) -> env => {
                    if let Ok(env) = env {
                        batch.push(env);
                    }
                }
                recv(commands) -> cmd => match cmd {
                    Ok(cmd) => apply(cmd, mux, factory, machines, reports, &mut finishing),
                    // Handle dropped without join: finish when drained.
                    Err(_) => finishing = true,
                }
            }
        }
        dispatch(batch, machines, reports);
    }
}

fn apply(
    cmd: Command,
    mux: &crate::transport::MuxEndpoint,
    factory: &mut ClientFactory,
    machines: &mut HashMap<NodeId, Client>,
    reports: &mut Vec<ClientReport>,
    finishing: &mut bool,
) {
    match cmd {
        Command::Crash { id, ack } => {
            mux.detach(id);
            // Process everything already delivered before tearing the
            // machine down — a threaded actor's `recv` loop drains its
            // buffered channel after `disconnect` the same way.
            let mut pending = Vec::new();
            while let Some(env) = mux.try_recv() {
                pending.push(env);
            }
            dispatch(pending, machines, reports);
            let crashed = match machines.remove(&id) {
                Some(client) => {
                    reports.push(client.report());
                    true
                }
                None => false,
            };
            let _ = ack.send(crashed);
        }
        Command::Restart { id, ack } => {
            let outbox = mux.attach(id);
            machines.insert(id, factory(id, outbox));
            let _ = ack.send(());
        }
        Command::Rendezvous { ack } => {
            // Drain-and-dispatch everything already delivered, so the
            // caller knows no client step started before the rendezvous
            // is still running when the ack arrives.
            let mut pending = Vec::new();
            while let Some(env) = mux.try_recv() {
                pending.push(env);
            }
            dispatch(pending, machines, reports);
            let _ = ack.send(());
        }
        Command::Finish => *finishing = true,
    }
}

/// Groups a drained batch by destination (preserving per-client
/// delivery order), steps every addressed machine as one pool task
/// each, and banks reports for machines that hit shutdown. Envelopes
/// for ids without a live machine — crashed, shut down, or never
/// attached — are discarded, mirroring sends into a dead actor's
/// channel on the threaded path.
fn dispatch(
    batch: Vec<crate::transport::Envelope>,
    machines: &mut HashMap<NodeId, Client>,
    reports: &mut Vec<ClientReport>,
) {
    if batch.is_empty() {
        return;
    }
    let mut order: Vec<NodeId> = Vec::new();
    let mut grouped: HashMap<NodeId, Vec<crate::transport::Envelope>> = HashMap::new();
    for env in batch {
        if !machines.contains_key(&env.to) {
            continue;
        }
        grouped.entry(env.to).or_insert_with(|| {
            order.push(env.to);
            Vec::new()
        });
        grouped.get_mut(&env.to).expect("group present").push(env);
    }
    let items: Vec<(Client, Vec<crate::transport::Envelope>)> = order
        .into_iter()
        .map(|id| {
            let envs = grouped.remove(&id).expect("group present");
            (machines.remove(&id).expect("machine present"), envs)
        })
        .collect();
    let stepped = baffle_tensor::pool::parallel_map(items, |_, (mut client, envs)| {
        let mut stopped = false;
        for env in envs {
            if client.handle(env).is_break() {
                // Drop any later events, like a threaded actor breaking
                // out of its recv loop on Shutdown.
                stopped = true;
                break;
            }
        }
        (client, stopped)
    });
    for (client, stopped) in stepped {
        if stopped {
            reports.push(client.report());
        } else {
            machines.insert(client.id(), client);
        }
    }
}
