//! Model-replacement attack (Bagdasaryan et al., AISTATS 2020).

use crate::BackdoorSpec;
use baffle_data::Dataset;
use baffle_nn::{Mlp, Model, Sgd};
use baffle_tensor::ops;
use rand::rngs::StdRng;

/// The train-and-scale model-replacement attack used as the paper's
/// benchmark (§III-B, §VI-A).
///
/// The attacker trains a local model `X` starting from the global model
/// `G` on a blend of **poisoned** backdoor samples (relabelled to the
/// target class) and its own **clean** data (multi-task learning: the
/// backdoor subtask plus main-task performance), then submits the boosted
/// update
///
/// ```text
/// U = γ · (X − G)
/// ```
///
/// with `γ = N / (λ·n)` so that FedAvg aggregation yields `G' ≈ X` even
/// when the other `n−1` updates are honest.
#[derive(Debug, Clone)]
pub struct ModelReplacement {
    spec: BackdoorSpec,
    boost: f32,
    epochs: usize,
    lr: f32,
    batch_size: usize,
    poison_repeats: usize,
}

impl ModelReplacement {
    /// Creates the attack for a backdoor task with boost factor
    /// `γ = boost` (use [`baffle_fl::FlConfig::replacement_boost`]).
    ///
    /// # Panics
    ///
    /// Panics if `boost` is not finite and positive.
    pub fn new(spec: BackdoorSpec, boost: f32) -> Self {
        assert!(boost.is_finite() && boost > 0.0, "ModelReplacement: boost must be positive");
        Self { spec, boost, epochs: 6, lr: 0.05, batch_size: 32, poison_repeats: 3 }
    }

    /// The backdoor task being injected.
    pub fn spec(&self) -> &BackdoorSpec {
        &self.spec
    }

    /// The boost factor γ.
    pub fn boost(&self) -> f32 {
        self.boost
    }

    /// Overrides the attacker's local training epochs (default 6 — the
    /// attacker trains longer than honest clients to embed the backdoor).
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        assert!(epochs > 0, "epochs must be positive");
        self.epochs = epochs;
        self
    }

    /// Overrides the attacker's local learning rate (default 0.05 — the
    /// attacker uses a lower rate to preserve main-task accuracy).
    pub fn with_lr(mut self, lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "lr must be positive");
        self.lr = lr;
        self
    }

    /// How many times the (relabelled) backdoor set is repeated in the
    /// training blend (default 3), controlling the poison ratio.
    pub fn with_poison_repeats(mut self, repeats: usize) -> Self {
        assert!(repeats > 0, "poison_repeats must be positive");
        self.poison_repeats = repeats;
        self
    }

    /// Builds the attacker's local training blend: its clean data plus
    /// `poison_repeats` copies of the backdoor set relabelled to the
    /// target class.
    pub fn training_blend(&self, clean: &Dataset, backdoor: &Dataset) -> Dataset {
        let poisoned = self.spec.poison(backdoor);
        let mut blend = clean.clone();
        for _ in 0..self.poison_repeats {
            blend = blend.concat(&poisoned);
        }
        blend
    }

    /// Trains the backdoored local model `X` from the current global
    /// model (without boosting).
    pub fn train_backdoored(
        &self,
        global: &Mlp,
        clean: &Dataset,
        backdoor: &Dataset,
        rng: &mut StdRng,
    ) -> Mlp {
        let blend = self.training_blend(clean, backdoor);
        let mut local = global.clone();
        let mut opt = Sgd::new(self.lr).with_momentum(0.9);
        for _ in 0..self.epochs {
            local.train_epoch(blend.features(), blend.labels(), self.batch_size, &mut opt, rng);
        }
        local
    }

    /// The full attack: returns the boosted poisoned update
    /// `γ · (X − G)`.
    pub fn poisoned_update(
        &self,
        global: &Mlp,
        clean: &Dataset,
        backdoor: &Dataset,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        let x = self.train_backdoored(global, clean, backdoor, rng);
        ops::scale(self.boost, &ops::sub(&x.params(), &global.params()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baffle_data::{SyntheticVision, VisionSpec};
    use baffle_fl::fedavg;
    use baffle_nn::{eval, MlpSpec};
    use rand::SeedableRng;

    struct Fixture {
        gen: SyntheticVision,
        global: Mlp,
        clean: Dataset,
        backdoor: Dataset,
        spec: BackdoorSpec,
        rng: StdRng,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(21);
        let vspec = VisionSpec::new(5, 12, 3).with_label_noise(0.02);
        let gen = SyntheticVision::new(&vspec, &mut rng);
        let spec = BackdoorSpec::semantic(1, 2, 4);
        // Pre-train the global model on honest data so the attack starts
        // from a converged model, like the paper's stable scenario.
        let train = gen.generate_excluding(&mut rng, 1500, 1, 2);
        let mut global = Mlp::new(&MlpSpec::new(12, &[24], 5), &mut rng);
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        for _ in 0..20 {
            global.train_epoch(train.features(), train.labels(), 32, &mut opt, &mut rng);
        }
        let clean = gen.generate_excluding(&mut rng, 400, 1, 2);
        let backdoor = gen.generate_subgroup(&mut rng, 60, 1, 2);
        Fixture { gen, global, clean, backdoor, spec, rng }
    }

    #[test]
    fn blend_contains_repeated_poison() {
        let f = fixture();
        let attack = ModelReplacement::new(f.spec, 1.0).with_poison_repeats(2);
        let blend = attack.training_blend(&f.clean, &f.backdoor);
        assert_eq!(blend.len(), f.clean.len() + 2 * f.backdoor.len());
        // All backdoor copies are relabelled to the target class.
        let target_count = blend.labels().iter().filter(|&&y| y == 4).count();
        assert!(target_count >= 2 * f.backdoor.len());
    }

    #[test]
    fn backdoored_model_learns_the_subtask_and_keeps_main_task() {
        let mut f = fixture();
        let attack = ModelReplacement::new(f.spec, 1.0);
        let x = attack.train_backdoored(&f.global, &f.clean, &f.backdoor, &mut f.rng);

        // Backdoor accuracy on *fresh* backdoor instances.
        let mut rng2 = StdRng::seed_from_u64(777);
        let fresh_bd = f.gen.generate_subgroup(&mut rng2, 100, 1, 2);
        let bd_acc = eval::backdoor_accuracy(&x, fresh_bd.features(), 4);
        assert!(bd_acc > 0.8, "backdoor accuracy only {bd_acc}");

        // Main-task accuracy stays close to the clean model's.
        let testset = f.gen.generate_excluding(&mut rng2, 600, 1, 2);
        let clean_acc = f.global.accuracy(testset.features(), testset.labels());
        let poisoned_acc = x.accuracy(testset.features(), testset.labels());
        assert!(
            poisoned_acc > clean_acc - 0.12,
            "main task collapsed: {clean_acc} -> {poisoned_acc}"
        );
    }

    #[test]
    fn boosted_update_survives_fedavg_averaging() {
        let mut f = fixture();
        // FL setting: N = 40 total, λ = 1 ⇒ γ = N/λ = 40 for full replacement.
        let gamma = 40.0 / 1.0;
        let attack = ModelReplacement::new(f.spec, gamma);
        let poisoned = attack.poisoned_update(&f.global, &f.clean, &f.backdoor, &mut f.rng);

        // Three honest (zero) updates plus the poisoned one.
        let zeros = vec![0.0; poisoned.len()];
        let updates = vec![zeros.clone(), zeros.clone(), zeros, poisoned];
        let new_params = fedavg(&f.global.params(), &updates, 1.0, 40);

        let mut new_global = f.global.clone();
        new_global.set_params(&new_params);
        let mut rng2 = StdRng::seed_from_u64(778);
        let fresh_bd = f.gen.generate_subgroup(&mut rng2, 100, 1, 2);
        let bd_acc = eval::backdoor_accuracy(&new_global, fresh_bd.features(), 4);
        assert!(bd_acc > 0.7, "backdoor did not survive aggregation: {bd_acc}");
    }

    #[test]
    fn unboosted_update_is_diluted_by_aggregation() {
        let mut f = fixture();
        let attack = ModelReplacement::new(f.spec, 1.0);
        let poisoned = attack.poisoned_update(&f.global, &f.clean, &f.backdoor, &mut f.rng);
        let zeros = vec![0.0; poisoned.len()];
        let updates = vec![zeros.clone(), zeros.clone(), zeros, poisoned];
        // λ = 1, N = 40: the poisoned update contributes only 1/40 weight.
        let new_params = fedavg(&f.global.params(), &updates, 1.0, 40);
        let mut new_global = f.global.clone();
        new_global.set_params(&new_params);
        let mut rng2 = StdRng::seed_from_u64(779);
        let fresh_bd = f.gen.generate_subgroup(&mut rng2, 100, 1, 2);
        let bd_acc = eval::backdoor_accuracy(&new_global, fresh_bd.features(), 4);
        assert!(bd_acc < 0.5, "unboosted single-client backdoor should dilute: {bd_acc}");
    }

    #[test]
    #[should_panic(expected = "boost must be positive")]
    fn non_positive_boost_panics() {
        let _ = ModelReplacement::new(BackdoorSpec::label_flip(0, 1), 0.0);
    }
}
