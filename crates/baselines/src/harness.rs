//! Comparison harness: every defense against the same model-replacement
//! attack on the same non-IID substrate.
//!
//! One harness run fixes the synthetic problem, the client shards, the
//! warm-started global model and the injection schedule, then plays the
//! FL rounds with a pluggable [`DefenseUnderTest`]. The attacker is
//! allowed its best boost per defense (boosted replacement defeats
//! averaging; unboosted blending slips past norm- and distance-based
//! rules), mirroring a worst-case adaptive adversary.

use crate::aggregators;
use crate::filters::{clip_and_noise, FoolsGold};
use crate::flguard::FlGuard;
use baffle_attack::voting::Vote;
use baffle_attack::{BackdoorSpec, ModelReplacement};
use baffle_core::{QuorumRule, ValidationConfig, Validator};
use baffle_data::{partition, SyntheticVision, VisionSpec};
use baffle_fl::{sampling, LocalTrainer};
use baffle_nn::{eval, Mlp, MlpSpec, Model, Sgd};
use baffle_tensor::ops;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which defense aggregates (or vets) the round's updates.
#[derive(Debug, Clone, PartialEq)]
pub enum DefenseUnderTest {
    /// Plain FedAvg (mean of updates) — no defense.
    Mean,
    /// Krum selecting a single update, assuming `f` Byzantine clients.
    Krum {
        /// Assumed number of Byzantine clients.
        f: usize,
    },
    /// Multi-Krum averaging the best `m` updates.
    MultiKrum {
        /// Assumed number of Byzantine clients.
        f: usize,
        /// Number of selected updates.
        m: usize,
    },
    /// Coordinate-wise median.
    Median,
    /// Coordinate-wise trimmed mean dropping `beta` per side.
    TrimmedMean {
        /// Values trimmed per coordinate per side.
        beta: usize,
    },
    /// Robust Federated Aggregation (geometric median).
    GeometricMedian,
    /// Norm clipping plus Gaussian noise.
    ClipNoise {
        /// Norm bound applied to each update.
        max_norm: f32,
        /// Noise standard deviation added to the aggregate.
        noise_std: f32,
    },
    /// FoolsGold similarity re-weighting (stateful across rounds).
    FoolsGoldDefense,
    /// FLGuard/FLAME-style clustering + clipping + noising.
    FlGuardDefense {
        /// Noise scale relative to the clipping bound.
        noise_factor: f32,
    },
    /// The BaFFLe feedback loop with the given look-back and quorum.
    Baffle {
        /// Look-back window ℓ.
        lookback: usize,
        /// Quorum threshold q among the validators.
        quorum: usize,
    },
}

impl DefenseUnderTest {
    /// Short name for result tables.
    pub fn name(&self) -> &'static str {
        match self {
            DefenseUnderTest::Mean => "fedavg (none)",
            DefenseUnderTest::Krum { .. } => "krum",
            DefenseUnderTest::MultiKrum { .. } => "multi-krum",
            DefenseUnderTest::Median => "median",
            DefenseUnderTest::TrimmedMean { .. } => "trimmed-mean",
            DefenseUnderTest::GeometricMedian => "rfa (geo-median)",
            DefenseUnderTest::ClipNoise { .. } => "clip+noise",
            DefenseUnderTest::FoolsGoldDefense => "foolsgold",
            DefenseUnderTest::FlGuardDefense { .. } => "flguard",
            DefenseUnderTest::Baffle { .. } => "baffle",
        }
    }

    /// Whether the rule must see individual updates (incompatible with
    /// secure aggregation) — the paper's deployment argument.
    pub fn needs_individual_updates(&self) -> bool {
        !matches!(self, DefenseUnderTest::Mean | DefenseUnderTest::Baffle { .. })
    }
}

/// Outcome of one harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonOutcome {
    /// Main-task accuracy after the final round.
    pub final_main_accuracy: f32,
    /// Highest backdoor accuracy observed right after any injection.
    pub peak_backdoor_accuracy: f32,
    /// Backdoor accuracy after the final round.
    pub final_backdoor_accuracy: f32,
    /// Rounds the defense rejected (BaFFLe only; 0 otherwise).
    pub rounds_rejected: usize,
    /// The attacker boost that produced this outcome.
    pub boost_used: f32,
}

/// Harness parameters (a scaled-down version of the paper's CIFAR-like
/// stable scenario, small enough to sweep every defense).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonConfig {
    /// Master seed.
    pub seed: u64,
    /// Recorded FL rounds.
    pub rounds: usize,
    /// Rounds (1-based) with an injection.
    pub poison_rounds: Vec<usize>,
    /// Total clients.
    pub num_clients: usize,
    /// Contributors per round.
    pub clients_per_round: usize,
    /// Honest-pool size.
    pub total_train: usize,
}

impl Default for ComparisonConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            rounds: 16,
            poison_rounds: vec![6, 11],
            num_clients: 40,
            clients_per_round: 8,
            total_train: 8_000,
        }
    }
}

/// Runs one defense against the attack with a fixed boost.
pub fn run_with_boost(
    defense: &DefenseUnderTest,
    config: &ComparisonConfig,
    boost: f32,
) -> ComparisonOutcome {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let spec = VisionSpec::cifar_like();
    let generator = SyntheticVision::new(&spec, &mut rng);
    let backdoor = BackdoorSpec::semantic(1, 0, 2);
    let pool = generator.generate_excluding(&mut rng, config.total_train, 1, 0);
    let (shards, server_data) =
        partition::client_server_split(&mut rng, &pool, config.num_clients, 0.9, 0.05);
    let test = generator.generate_excluding(&mut rng, 1_500, 1, 0);
    let backdoor_test = generator.generate_subgroup(&mut rng, 300, 1, 0);
    let attacker_backdoor = generator.generate_subgroup(&mut rng, 150, 1, 0);

    // Warm start to a stable model.
    let mut global = Mlp::new(&MlpSpec::new(spec.input_dim(), &[48], spec.num_classes()), &mut rng);
    {
        let mut pooled = server_data.clone();
        for s in &shards {
            if !s.is_empty() {
                pooled = pooled.concat(s);
            }
        }
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        for _ in 0..12 {
            global.train_epoch(pooled.features(), pooled.labels(), 32, &mut opt, &mut rng);
        }
    }

    let trainer = LocalTrainer::new(2, 0.1, 32);
    let attack = ModelReplacement::new(backdoor, boost);
    let validator = Validator::new(ValidationConfig::new(8).with_margin(1.2));
    let mut history: Vec<Mlp> = vec![global.clone()];
    let mut foolsgold = FoolsGold::new();

    // Warm-up rounds for the BaFFLe history (all defenses get them so
    // trajectories stay comparable).
    for _ in 0..10 {
        let contributors =
            sampling::select_clients(&mut rng, config.num_clients, config.clients_per_round);
        let updates: Vec<Vec<f32>> = contributors
            .iter()
            .map(|&c| trainer.train_update(&global, &shards[c], &mut rng))
            .collect();
        let agg = aggregators::mean(&updates).expect("non-empty round");
        let mut p = global.params();
        ops::axpy(1.0, &agg, &mut p);
        global.set_params(&p);
        history.push(global.clone());
        if history.len() > 9 {
            history.remove(0);
        }
    }

    let mut peak_bd = 0.0_f32;
    let mut rejected = 0usize;
    for round in 1..=config.rounds {
        let poisoned = config.poison_rounds.contains(&round);
        let mut contributors =
            sampling::select_clients(&mut rng, config.num_clients, config.clients_per_round);
        if poisoned && !contributors.contains(&0) {
            contributors[0] = 0;
        }
        let mut ids = Vec::new();
        let mut updates = Vec::new();
        for &c in &contributors {
            if poisoned && c == 0 {
                continue;
            }
            ids.push(c);
            updates.push(trainer.train_update(&global, &shards[c], &mut rng));
        }
        if poisoned {
            let mut atk_rng = StdRng::seed_from_u64(rng.gen());
            ids.push(0);
            updates.push(attack.poisoned_update(
                &global,
                &shards[0],
                &attacker_backdoor,
                &mut atk_rng,
            ));
        }

        let n = updates.len();
        let candidate_update = match defense {
            DefenseUnderTest::Mean | DefenseUnderTest::Baffle { .. } => {
                aggregators::mean(&updates).expect("non-empty")
            }
            DefenseUnderTest::Krum { f } => {
                aggregators::krum(&updates, (*f).min(n.saturating_sub(3) / 2)).expect("feasible")
            }
            DefenseUnderTest::MultiKrum { f, m } => {
                aggregators::multi_krum(&updates, (*f).min(n.saturating_sub(3) / 2), (*m).min(n))
                    .expect("feasible")
            }
            DefenseUnderTest::Median => aggregators::median(&updates).expect("non-empty"),
            DefenseUnderTest::TrimmedMean { beta } => {
                aggregators::trimmed_mean(&updates, (*beta).min((n - 1) / 2)).expect("feasible")
            }
            DefenseUnderTest::GeometricMedian => {
                aggregators::geometric_median(&updates, 40, 1e-6).expect("non-empty")
            }
            DefenseUnderTest::ClipNoise { max_norm, noise_std } => {
                clip_and_noise(&updates, *max_norm, *noise_std, &mut rng).expect("non-empty")
            }
            DefenseUnderTest::FoolsGoldDefense => {
                foolsgold.aggregate(&ids, &updates).expect("non-empty")
            }
            DefenseUnderTest::FlGuardDefense { noise_factor } => {
                FlGuard::new(*noise_factor)
                    .aggregate(&updates, &mut rng)
                    .expect("non-empty")
                    .aggregate
            }
        };

        let mut candidate = global.clone();
        let mut p = global.params();
        ops::axpy(1.0, &candidate_update, &mut p);
        candidate.set_params(&p);

        let accept = match defense {
            DefenseUnderTest::Baffle { quorum, .. } => {
                let validators = sampling::select_clients(&mut rng, config.num_clients, 8);
                let mut votes: Vec<Vote> = validators
                    .iter()
                    .map(|&v| match validator.validate(&candidate, &history, &shards[v]) {
                        Ok(verdict) => verdict.vote(),
                        Err(_) => Vote::Accept,
                    })
                    .collect();
                votes.push(match validator.validate(&candidate, &history, &server_data) {
                    Ok(verdict) => verdict.vote(),
                    Err(_) => Vote::Accept,
                });
                let rule =
                    QuorumRule::new(votes.len(), (*quorum).min(votes.len())).expect("valid quorum");
                rule.decide(&votes).is_accepted()
            }
            _ => true,
        };

        if accept {
            global = candidate;
            history.push(global.clone());
            if history.len() > 9 {
                history.remove(0);
            }
        } else {
            rejected += 1;
        }

        if poisoned {
            let bd = eval::backdoor_accuracy(&global, backdoor_test.features(), 2);
            peak_bd = peak_bd.max(bd);
        }
    }

    ComparisonOutcome {
        final_main_accuracy: global.accuracy(test.features(), test.labels()),
        peak_backdoor_accuracy: peak_bd,
        final_backdoor_accuracy: eval::backdoor_accuracy(&global, backdoor_test.features(), 2),
        rounds_rejected: rejected,
        boost_used: boost,
    }
}

/// Runs one defense letting the attacker pick its best boost (the one
/// maximising peak backdoor accuracy).
pub fn run_best_attack(defense: &DefenseUnderTest, config: &ComparisonConfig) -> ComparisonOutcome {
    // Full-replacement boost under mean-of-updates aggregation is the
    // number of reporting clients; 1.0 is the stealthy alternative.
    let boosts = [config.clients_per_round as f32, 1.0];
    boosts
        .iter()
        .map(|&b| run_with_boost(defense, config, b))
        .max_by(|a, b| {
            a.peak_backdoor_accuracy
                .partial_cmp(&b.peak_backdoor_accuracy)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one boost")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(seed: u64) -> ComparisonConfig {
        ComparisonConfig {
            seed,
            rounds: 8,
            poison_rounds: vec![4],
            num_clients: 20,
            clients_per_round: 6,
            total_train: 3_000,
        }
    }

    #[test]
    fn undefended_mean_lets_the_boosted_backdoor_in() {
        let out = run_with_boost(&DefenseUnderTest::Mean, &quick_config(1), 6.0);
        assert!(out.peak_backdoor_accuracy > 0.5, "boosted attack failed: {out:?}");
        assert!(out.final_main_accuracy > 0.7);
    }

    #[test]
    fn baffle_blocks_what_mean_accepts() {
        let config = quick_config(2);
        let mean = run_with_boost(&DefenseUnderTest::Mean, &config, 6.0);
        let baffle =
            run_with_boost(&DefenseUnderTest::Baffle { lookback: 8, quorum: 4 }, &config, 6.0);
        assert!(baffle.rounds_rejected >= 1, "baffle rejected nothing");
        assert!(
            baffle.peak_backdoor_accuracy < mean.peak_backdoor_accuracy,
            "baffle {:?} vs mean {:?}",
            baffle.peak_backdoor_accuracy,
            mean.peak_backdoor_accuracy
        );
    }

    #[test]
    fn clipping_blunts_the_boosted_attack() {
        let config = quick_config(3);
        let out = run_with_boost(
            &DefenseUnderTest::ClipNoise { max_norm: 1.0, noise_std: 0.0 },
            &config,
            6.0,
        );
        assert!(out.peak_backdoor_accuracy < 0.5, "clipping failed: {out:?}");
    }

    #[test]
    fn best_attack_explores_both_boosts() {
        let config = quick_config(4);
        let out = run_best_attack(&DefenseUnderTest::Median, &config);
        assert!(out.boost_used == 1.0 || out.boost_used == 6.0);
    }

    #[test]
    fn defense_names_are_distinct() {
        let all = [
            DefenseUnderTest::Mean,
            DefenseUnderTest::Krum { f: 1 },
            DefenseUnderTest::MultiKrum { f: 1, m: 4 },
            DefenseUnderTest::Median,
            DefenseUnderTest::TrimmedMean { beta: 1 },
            DefenseUnderTest::GeometricMedian,
            DefenseUnderTest::ClipNoise { max_norm: 1.0, noise_std: 0.01 },
            DefenseUnderTest::FoolsGoldDefense,
            DefenseUnderTest::Baffle { lookback: 8, quorum: 4 },
        ];
        let mut names: Vec<&str> = all.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
        assert!(!DefenseUnderTest::Mean.needs_individual_updates());
        assert!(!DefenseUnderTest::Baffle { lookback: 8, quorum: 4 }.needs_individual_updates());
        assert!(DefenseUnderTest::Median.needs_individual_updates());
    }
}
