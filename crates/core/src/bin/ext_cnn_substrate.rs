//! Extension experiment: the validation function is **model-agnostic**.
//!
//! The paper's defense consumes only per-class error rates of the global
//! model, never its internals. This binary swaps the MLP substrate for
//! the residual 1-D CNN ("MiniResNet", the closest in-repo analogue of
//! the paper's ResNet18) and shows that Algorithm 2 behaves identically:
//! clean SGD snapshots pass, a backdoored CNN is flagged.
//!
//! Run with `cargo run --release -p baffle-core --bin ext_cnn_substrate`.

use baffle_attack::BackdoorSpec;
use baffle_core::exp::{ExpArgs, Table};
use baffle_core::{ValidationConfig, Validator};
use baffle_data::{SyntheticVision, VisionSpec};
use baffle_nn::{Cnn, CnnSpec, Model, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::from_env();
    let lookback = 10;
    let mut table = Table::new(
        "Extension: Algorithm 2 over a residual CNN substrate (label-flip backdoor)",
        &["rep", "candidate", "vote", "LOF", "threshold"],
    );

    let mut caught = 0;
    let mut clean_rejected = 0;
    let reps = args.reps();
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(args.seed + 7 * rep as u64);
        let vspec = VisionSpec::new(6, 24, 2).with_noise_std(0.8).with_label_noise(0.04);
        let gen = SyntheticVision::new(&vspec, &mut rng);
        let train = gen.generate(&mut rng, if args.fast { 1_500 } else { 3_000 });
        let validation = gen.generate(&mut rng, 500);

        // Clean SGD trajectory of CNN snapshots = the accepted history.
        let spec = CnnSpec::new(24, &[6, 6], 3, 6).with_residual();
        let mut model = Cnn::new(&spec, &mut rng);
        // Converge first (the paper's stable-model precondition), then
        // record the history at a low learning rate so clean round-to-
        // round variations are small — as they are for a mature model.
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        for _ in 0..20 {
            model.train_epoch(train.features(), train.labels(), 32, &mut opt, &mut rng);
        }
        let mut opt = Sgd::new(0.01).with_momentum(0.9);
        let mut history = Vec::new();
        for _ in 0..lookback + 3 {
            model.train_epoch(train.features(), train.labels(), 32, &mut opt, &mut rng);
            history.push(model.clone());
        }

        let validator = Validator::new(ValidationConfig::new(lookback).with_margin(1.2));

        // Clean candidate: one more honest epoch.
        let mut clean = model.clone();
        clean.train_epoch(train.features(), train.labels(), 32, &mut opt, &mut rng);
        let verdict = validator.validate(&clean, &history, &validation).expect("clean verdict");
        if verdict.is_reject() {
            clean_rejected += 1;
        }
        table.row(vec![
            rep.to_string(),
            "clean".into(),
            format!("{:?}", verdict.vote()),
            format!("{:.3}", verdict.outlier_factor()),
            format!("{:.3}", verdict.threshold()),
        ]);

        // Poisoned candidate: label-flip backdoor trained into the CNN.
        let backdoor = BackdoorSpec::label_flip(1, 4);
        let poisoned_data = backdoor.poison(&train);
        let mut poisoned = model.clone();
        let mut atk_opt = Sgd::new(0.05).with_momentum(0.9);
        for _ in 0..6 {
            poisoned.train_epoch(
                poisoned_data.features(),
                poisoned_data.labels(),
                32,
                &mut atk_opt,
                &mut rng,
            );
        }
        let verdict =
            validator.validate(&poisoned, &history, &validation).expect("poisoned verdict");
        if verdict.is_reject() {
            caught += 1;
        }
        table.row(vec![
            rep.to_string(),
            "backdoored".into(),
            format!("{:?}", verdict.vote()),
            format!("{:.3}", verdict.outlier_factor()),
            format!("{:.3}", verdict.threshold()),
        ]);
        let _ = poisoned.num_params();
    }
    table.emit(&args);
    println!("backdoored CNNs caught: {caught}/{reps}; clean CNNs wrongly rejected: {clean_rejected}/{reps}");
}
