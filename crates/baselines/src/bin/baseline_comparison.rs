//! Pits every baseline defense against the model-replacement semantic
//! backdoor, on the same non-IID substrate BaFFLe is evaluated on —
//! substantiating the paper's related-work claims (§I, §VII): robust
//! aggregation degrades under non-IID data or misses the attack, update
//! inspection breaks secure aggregation, and FoolsGold is blind to a
//! single-client attacker.
//!
//! The attacker picks its best boost per defense (boosted replacement vs
//! stealthy unboosted blending).
//!
//! Run with `cargo run --release -p baffle-baselines --bin baseline_comparison`.

use baffle_baselines::harness::{run_best_attack, ComparisonConfig, DefenseUnderTest};
use baffle_core::exp::{ExpArgs, Table};
use baffle_core::metrics::mean_std;

fn main() {
    let args = ExpArgs::from_env();
    let defenses = [
        DefenseUnderTest::Mean,
        DefenseUnderTest::Krum { f: 1 },
        DefenseUnderTest::MultiKrum { f: 1, m: 4 },
        DefenseUnderTest::Median,
        DefenseUnderTest::TrimmedMean { beta: 1 },
        DefenseUnderTest::GeometricMedian,
        DefenseUnderTest::ClipNoise { max_norm: 1.0, noise_std: 0.02 },
        DefenseUnderTest::FoolsGoldDefense,
        DefenseUnderTest::FlGuardDefense { noise_factor: 0.01 },
        DefenseUnderTest::Baffle { lookback: 8, quorum: 5 },
    ];

    let mut table = Table::new(
        "Baseline comparison: model-replacement semantic backdoor, non-IID clients, \
         attacker-best boost",
        &["defense", "secagg?", "main acc", "peak backdoor acc", "final backdoor acc", "boost"],
    );
    for defense in &defenses {
        let mut mains = Vec::new();
        let mut peaks = Vec::new();
        let mut finals = Vec::new();
        let mut boost = 0.0;
        for rep in 0..args.reps() {
            let mut config =
                ComparisonConfig { seed: args.seed + 100 * rep as u64, ..Default::default() };
            if args.fast {
                config.rounds = 10;
                config.poison_rounds = vec![5];
            }
            let out = run_best_attack(defense, &config);
            mains.push(out.final_main_accuracy as f64);
            peaks.push(out.peak_backdoor_accuracy as f64);
            finals.push(out.final_backdoor_accuracy as f64);
            boost = out.boost_used;
        }
        let fmt = |v: &[f64]| {
            let (m, s) = mean_std(v);
            format!("{m:.3} ±{s:.3}")
        };
        table.row(vec![
            defense.name().to_string(),
            if defense.needs_individual_updates() { "NO".into() } else { "yes".into() },
            fmt(&mains),
            fmt(&peaks),
            fmt(&finals),
            format!("{boost:.0}"),
        ]);
    }
    table.emit(&args);
    println!(
        "\n'secagg?' = compatible with secure aggregation (never inspects an\n\
         individual update). Only plain FedAvg and BaFFLe qualify — and only\n\
         BaFFLe also keeps the backdoor out."
    );
}
