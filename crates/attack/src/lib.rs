//! Backdoor attacks on federated learning, as used to evaluate BaFFLe.
//!
//! Implements the attacker side of the paper's threat model (§III):
//!
//! - [`BackdoorSpec`] — the adversarial task: make inputs from a chosen
//!   *backdoor subpopulation* be classified as an attacker-chosen target
//!   label. The semantic variant targets one `(class, subgroup)` pair
//!   (the analogue of "cars with striped background → bird"); the
//!   label-flip variant (the paper's FEMNIST adaptation) targets a whole
//!   source class.
//! - [`ModelReplacement`] — the train-and-scale attack of Bagdasaryan et
//!   al.: train a local model on a blend of poisoned and clean data, then
//!   submit the boosted update `γ · (X − G)` so aggregation replaces the
//!   global model with the backdoored one.
//! - [`adaptive`] — the defense-aware attacker of §VI-C: it evaluates a
//!   local copy of the deployed validation function on *its own* data and
//!   dampens the poisoned update until that local check passes.
//! - [`voting`] — malicious validator behaviours (stealth-accept
//!   collusion and denial-of-service rejection).
//!
//! # Example
//!
//! ```
//! use baffle_attack::{BackdoorSpec, ModelReplacement};
//! use baffle_data::{SyntheticVision, VisionSpec};
//! use baffle_nn::{Mlp, MlpSpec};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(5);
//! let gen = SyntheticVision::new(&VisionSpec::new(4, 8, 2), &mut rng);
//! let spec = BackdoorSpec::semantic(0, 1, 3);
//! let attacker_data = gen.generate(&mut rng, 200);
//! let backdoor = gen.generate_subgroup(&mut rng, 40, spec.source_class(), spec.subgroup().unwrap());
//! let global = Mlp::new(&MlpSpec::new(8, &[16], 4), &mut rng);
//!
//! let attack = ModelReplacement::new(spec, 1.0);
//! let update = attack.poisoned_update(&global, &attacker_data, &backdoor, &mut rng);
//! assert_eq!(update.len(), 8 * 16 + 16 + 16 * 4 + 4);
//! ```

pub mod adaptive;
mod replacement;
mod spec;
pub mod voting;

pub use replacement::ModelReplacement;
pub use spec::BackdoorSpec;
