//! Property-based tests for the FL substrate.

use baffle_fl::secagg::SecAggSession;
use baffle_fl::{fedavg, sampling};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn updates_strategy(n: usize, len: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-5.0_f32..5.0, len..=len), n..=n)
}

proptest! {
    /// FedAvg with λ = N/n and all n clients reporting equals the mean of
    /// the local models.
    #[test]
    fn full_replacement_is_mean_of_locals(locals in updates_strategy(4, 6), global in prop::collection::vec(-5.0_f32..5.0, 6)) {
        let n = locals.len();
        let big_n = 3 * n;
        let lambda = big_n as f32 / n as f32;
        let updates: Vec<Vec<f32>> = locals.iter().map(|l| baffle_tensor::ops::sub(l, &global)).collect();
        let out = fedavg(&global, &updates, lambda, big_n);
        let mean = baffle_tensor::ops::mean(&locals);
        for (a, b) in out.iter().zip(&mean) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    /// FedAvg is invariant to the order of updates.
    #[test]
    fn fedavg_is_permutation_invariant(mut updates in updates_strategy(5, 4), global in prop::collection::vec(-5.0_f32..5.0, 4)) {
        let a = fedavg(&global, &updates, 2.0, 10);
        updates.reverse();
        let b = fedavg(&global, &updates, 2.0, 10);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Secure-aggregation masks always cancel, for any participant count
    /// and update length.
    #[test]
    fn secagg_masks_cancel(n in 1usize..8, len in 1usize..40, seed in 0u64..1000) {
        let updates: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..len).map(|j| ((i * 13 + j * 7) % 11) as f32 * 0.1 - 0.5).collect())
            .collect();
        let session = SecAggSession::new(seed, n, len);
        let masked: Vec<Vec<f32>> = (0..n).map(|i| session.mask(i, &updates[i])).collect();
        let sum = session.aggregate(&masked);
        let mut expected = vec![0.0_f32; len];
        for u in &updates {
            baffle_tensor::ops::axpy(1.0, u, &mut expected);
        }
        for (a, b) in sum.iter().zip(&expected) {
            prop_assert!((a - b).abs() < 1e-2 * n as f32, "{a} vs {b}");
        }
    }

    /// Client selection returns exactly n distinct, in-range indices.
    #[test]
    fn selection_is_a_partial_permutation(total in 1usize..60, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = (total / 2).max(1);
        let mut s = sampling::select_clients(&mut rng, total, n);
        prop_assert_eq!(s.len(), n);
        prop_assert!(s.iter().all(|&i| i < total));
        s.sort_unstable();
        s.dedup();
        prop_assert_eq!(s.len(), n);
    }

    /// Disjoint round selection never overlaps.
    #[test]
    fn disjoint_selection_has_no_overlap(total in 4usize..40, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = total / 3 + 1;
        let v = total / 3;
        prop_assume!(c + v <= total);
        let (contr, val) = sampling::select_round_clients(&mut rng, total, c, v, true);
        for i in &contr {
            prop_assert!(!val.contains(i));
        }
    }
}
