//! Cross-transport equivalence: the frame-encoded socket transport must
//! be a pure carrier. Running the same deployment config over in-process
//! channels and over loopback sockets has to produce **bit-identical
//! protocol outcomes** — same accept/reject sequence, same ledger
//! counters, same client reports — because the only thing that changed
//! is how envelopes move, not what they say.
//!
//! Wall-clock phase durations and the wire-volume meters are the only
//! legitimate differences, so they are normalised out before comparing.

use baffle_fl::WireProfile;
use baffle_net::deployment::{Deployment, DeploymentConfig, DeploymentOutcome};
use baffle_net::server::ServerRound;
use baffle_net::socket::{SocketKind, TransportMode};
use std::time::Duration;

fn run_with(seed: u64, transport: TransportMode, wire: WireProfile) -> DeploymentOutcome {
    let mut config = DeploymentConfig::small(seed);
    config.transport = transport;
    config.wire_profile = wire;
    Deployment::run(config)
}

/// Zeroes the wall-clock fields and the wire-volume meters — everything
/// the protocol *decided* stays, and must match bit-for-bit.
fn normalized(outcome: &DeploymentOutcome) -> DeploymentOutcome {
    DeploymentOutcome {
        rounds: outcome
            .rounds
            .iter()
            .map(|r| ServerRound {
                update_phase: Duration::ZERO,
                vote_phase: Duration::ZERO,
                ..r.clone()
            })
            .collect(),
        wire_bytes: 0,
        wire_frames: 0,
        ..outcome.clone()
    }
}

#[test]
fn tcp_transport_is_bit_identical_to_in_process() {
    let channel = run_with(33, TransportMode::InProcess, WireProfile::lossless());
    let tcp = run_with(33, TransportMode::Socket(SocketKind::Tcp), WireProfile::lossless());

    // The socket run actually used the wire.
    assert!(tcp.wire_frames > 0, "TCP run wrote no frames");
    assert!(tcp.wire_bytes > 0, "TCP run wrote no bytes");
    assert_eq!(channel.wire_frames, 0, "in-process run must not touch sockets");

    assert_eq!(normalized(&channel), normalized(&tcp));
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_is_bit_identical_to_in_process() {
    let channel = run_with(34, TransportMode::InProcess, WireProfile::lossless());
    let unix = run_with(34, TransportMode::Socket(SocketKind::Unix), WireProfile::lossless());

    assert!(unix.wire_frames > 0, "unix-socket run wrote no frames");
    assert_eq!(normalized(&channel), normalized(&unix));
}

#[test]
fn quantized_profile_is_transport_invariant() {
    // Quantisation is lossy, but it is applied at *encode* time by the
    // sender — both transports carry the same bytes, so the (different)
    // protocol trajectory under q8 must still be transport-independent.
    let channel = run_with(35, TransportMode::InProcess, WireProfile::quantized());
    let tcp = run_with(35, TransportMode::Socket(SocketKind::Tcp), WireProfile::quantized());

    assert_eq!(normalized(&channel), normalized(&tcp));
}

#[test]
fn compact_profile_ships_fewer_history_bytes() {
    let dense = run_with(36, TransportMode::InProcess, WireProfile::lossless());
    let compact = run_with(36, TransportMode::InProcess, WireProfile::compact());

    let shipped =
        |o: &DeploymentOutcome| -> usize { o.rounds.iter().map(|r| r.history_bytes_shipped).sum() };
    let dense_bytes = shipped(&dense);
    let compact_bytes = shipped(&compact);
    assert!(dense_bytes > 0, "baseline run shipped no history at all");
    assert!(
        compact_bytes < dense_bytes,
        "compact profile did not reduce history shipping: {compact_bytes} >= {dense_bytes}"
    );
}
