//! Regression tests for server intake hardening: submissions from nodes
//! outside the round's sampled sets, spoofed sender ids and malformed
//! updates must be rejected at the door.
//!
//! Each test drives a real [`Server`] through scripted client threads
//! over the in-process [`Network`]. The transport delivers each node's
//! messages in send order, so a rogue message queued before the honest
//! replies is guaranteed to reach the server first — these tests fail on
//! the pre-fix server (corrupted aggregate, panic, stuffed quorum).

use baffle_core::{ValidationConfig, Validator, Vote};
use baffle_data::Dataset;
use baffle_fl::{FlConfig, WireProfile};
use baffle_net::message::{Message, NodeId};
use baffle_net::server::{Server, ServerConfig};
use baffle_net::transport::{Endpoint, Network};
use baffle_nn::{wire, Mlp, MlpSpec, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const NUM_CLIENTS: usize = 3;

fn tiny_model(seed: u64) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    Mlp::new(&MlpSpec::new(2, &[], 2), &mut rng)
}

/// A server where every client is sampled both as contributor and as
/// validator every round (3 of 3), so membership itself is never the
/// reason an honest submission would be missing.
fn make_server(network: &Network, quorum: usize, timeout_ms: u64, initial: &Mlp) -> Server {
    let endpoint = network.register(NodeId::SERVER);
    let config = ServerConfig {
        fl: FlConfig::new(NUM_CLIENTS, NUM_CLIENTS),
        validators_per_round: NUM_CLIENTS,
        quorum,
        phase_timeout: Duration::from_millis(timeout_ms),
        server_votes: false,
        seed: 7,
        bootstrap_rounds: 0,
        bootstrap_trusted: Vec::new(),
        wire: WireProfile::lossless(),
    };
    Server::new(
        endpoint,
        config,
        initial.clone(),
        5,
        Validator::new(ValidationConfig::new(3)),
        Dataset::empty(2, 2),
    )
}

/// Actor loop of a scripted client: answers every train request with the
/// fixed `update`, runs `on_validate` for every validate request, exits
/// on shutdown.
fn run_scripted_client(endpoint: Endpoint, update: Vec<f32>, on_validate: impl Fn(&Endpoint, u64)) {
    while let Ok(env) = endpoint.recv() {
        match env.message {
            Message::TrainRequest { round, .. } => {
                endpoint.send(
                    NodeId::SERVER,
                    Message::UpdateSubmission {
                        round,
                        from: endpoint.id(),
                        update: wire::encode_f32(&update),
                    },
                );
            }
            Message::ValidateRequest { round, .. } => on_validate(&endpoint, round),
            Message::Shutdown => break,
            _ => {}
        }
    }
}

fn accept_vote(endpoint: &Endpoint, round: u64) {
    endpoint.send(
        NodeId::SERVER,
        Message::VoteSubmission { round, from: endpoint.id(), vote: Vote::Accept },
    );
}

#[test]
fn unsolicited_update_cannot_reach_aggregation() {
    let network = Network::new();
    let initial = tiny_model(1);
    let before = initial.params();
    let mut server = make_server(&network, 2, 2_000, &initial);

    // A node that was never sampled injects a boosted "update" before the
    // round even starts — it is the first thing the server dequeues.
    let rogue = network.register(NodeId(9));
    rogue.send(
        NodeId::SERVER,
        Message::UpdateSubmission {
            round: 1,
            from: NodeId(9),
            update: wire::encode_f32(&vec![1e6; initial.num_params()]),
        },
    );

    let round = crossbeam::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            let endpoint = network.register(NodeId(c as u32));
            let zeros = vec![0.0f32; initial.num_params()];
            scope.spawn(move |_| run_scripted_client(endpoint, zeros, accept_vote));
        }
        let round = server.run_round();
        server.shutdown();
        round
    })
    .expect("client thread panicked");

    assert_eq!(round.rejected_submissions, 1, "the rogue update must be counted as rejected");
    assert_eq!(round.updates_received, NUM_CLIENTS, "all honest updates still aggregate");
    assert!(round.accepted);
    // All honest updates were zero, so the global model must be exactly
    // unchanged: the 1e6-boosted injection never touched FedAvg.
    assert_eq!(server.global_model().params(), before);
}

#[test]
fn wrong_length_update_is_discarded_not_fatal() {
    let network = Network::new();
    let initial = tiny_model(2);
    let before = initial.params();
    let mut server = make_server(&network, 2, 600, &initial);

    let round = crossbeam::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            let endpoint = network.register(NodeId(c as u32));
            // Client 2 is sampled but buggy/malicious: its update has half
            // the parameters. Pre-fix this panicked the server inside the
            // aggregation kernel.
            let update = if c == 2 {
                vec![0.0f32; initial.num_params() / 2]
            } else {
                vec![0.0f32; initial.num_params()]
            };
            scope.spawn(move |_| run_scripted_client(endpoint, update, accept_vote));
        }
        let round = server.run_round();
        server.shutdown();
        round
    })
    .expect("client thread panicked");

    assert_eq!(round.rejected_submissions, 1);
    assert_eq!(round.updates_received, NUM_CLIENTS - 1);
    assert!(round.accepted);
    assert_eq!(server.global_model().params(), before);
}

#[test]
fn duplicate_update_submissions_keep_the_first() {
    let network = Network::new();
    let initial = tiny_model(4);
    let before = initial.params();
    let mut server = make_server(&network, 2, 600, &initial);

    let round = crossbeam::thread::scope(|scope| {
        // Client 0 double-submits: first a zero update, then a boosted
        // one. First wins; the duplicate must be rejected at intake.
        let dup = network.register(NodeId(0));
        let n_params = initial.num_params();
        scope.spawn(move |_| {
            while let Ok(env) = dup.recv() {
                match env.message {
                    Message::TrainRequest { round, .. } => {
                        for update in [vec![0.0f32; n_params], vec![1e6; n_params]] {
                            dup.send(
                                NodeId::SERVER,
                                Message::UpdateSubmission {
                                    round,
                                    from: dup.id(),
                                    update: wire::encode_f32(&update),
                                },
                            );
                        }
                    }
                    Message::ValidateRequest { round, .. } => accept_vote(&dup, round),
                    Message::Shutdown => break,
                    _ => {}
                }
            }
        });
        let honest = network.register(NodeId(1));
        let zeros = vec![0.0f32; initial.num_params()];
        scope.spawn(move |_| run_scripted_client(honest, zeros, accept_vote));
        // Client 2 is mute: the phases run to their (short) timeout, so
        // the server is guaranteed to drain the duplicate submission.
        let mute = network.register(NodeId(2));
        scope.spawn(move |_| {
            while let Ok(env) = mute.recv() {
                if env.message == Message::Shutdown {
                    break;
                }
            }
        });

        let round = server.run_round();
        server.shutdown();
        round
    })
    .expect("client thread panicked");

    // A repeat to an already-settled slot is indistinguishable from a
    // link-level duplicate, so it lands in `duplicate_deliveries` — not
    // in `rejected_submissions`, which is reserved for sender misbehavior.
    assert_eq!(round.duplicate_deliveries, 1, "the duplicate must be counted as a duplicate");
    assert_eq!(round.rejected_submissions, 0, "a repeat is not an intake violation");
    assert_eq!(round.updates_received, 2, "clients 0 and 1 each contribute exactly once");
    assert!(round.accepted);
    // Both counted updates were zero: if the boosted duplicate had
    // overwritten the first submission, the global model would move.
    assert_eq!(server.global_model().params(), before);
}

#[test]
fn quorum_clamping_is_surfaced_on_the_round() {
    for (configured_quorum, expect_clamped) in [(9, true), (2, false)] {
        let network = Network::new();
        let initial = tiny_model(5);
        // 3 voters total (server does not vote): q = 9 cannot be met and
        // is silently lowered — the round must report the clamp.
        let mut server = make_server(&network, configured_quorum, 2_000, &initial);

        let round = crossbeam::thread::scope(|scope| {
            for c in 0..NUM_CLIENTS {
                let endpoint = network.register(NodeId(c as u32));
                let zeros = vec![0.0f32; initial.num_params()];
                scope.spawn(move |_| run_scripted_client(endpoint, zeros, accept_vote));
            }
            let round = server.run_round();
            server.shutdown();
            round
        })
        .expect("client thread panicked");

        assert_eq!(
            round.quorum_clamped, expect_clamped,
            "q={configured_quorum} over {NUM_CLIENTS} voters"
        );
        assert!(round.accepted);
    }
}

#[test]
fn votes_from_outside_the_validator_set_cannot_stuff_the_quorum() {
    let network = Network::new();
    let initial = tiny_model(3);
    // Quorum 1: a single counted Reject kills the round — the easiest
    // possible target for a stuffing attack.
    let mut server = make_server(&network, 1, 2_000, &initial);

    let rogue_a = network.register(NodeId(50));
    let rogue_b = network.register(NodeId(51));
    let spoofer = network.register(NodeId(9));

    // Honest validators hold their votes until the coordinator saw the
    // rogue votes enter the server's queue first.
    let (signal_tx, signal_rx) = crossbeam::channel::unbounded::<u64>();
    let (gate_tx, gate_rx) = crossbeam::channel::unbounded::<()>();

    let round = crossbeam::thread::scope(|scope| {
        for c in 0..NUM_CLIENTS {
            let endpoint = network.register(NodeId(c as u32));
            let zeros = vec![0.0f32; initial.num_params()];
            let signal_tx = signal_tx.clone();
            let gate_rx = gate_rx.clone();
            scope.spawn(move |_| {
                run_scripted_client(endpoint, zeros, |endpoint, round| {
                    // The coordinator only waits for the first signal; it
                    // may be gone by the time the others fire.
                    let _ = signal_tx.send(round);
                    gate_rx.recv().expect("gate open");
                    accept_vote(endpoint, round);
                });
            });
        }
        scope.spawn(move |_| {
            // A validate request went out, so the update phase is over:
            // stuff three Reject votes, then release the honest voters.
            let round = signal_rx.recv().expect("a validator was asked");
            for rogue in [&rogue_a, &rogue_b] {
                rogue.send(
                    NodeId::SERVER,
                    Message::VoteSubmission { round, from: rogue.id(), vote: Vote::Reject },
                );
            }
            // Impersonation attempt: claims to be sampled validator 0.
            spoofer.send(
                NodeId::SERVER,
                Message::VoteSubmission { round, from: NodeId(0), vote: Vote::Reject },
            );
            for _ in 0..NUM_CLIENTS {
                gate_tx.send(()).expect("clients alive");
            }
        });
        let round = server.run_round();
        server.shutdown();
        round
    })
    .expect("thread panicked");

    assert_eq!(round.rejected_votes, 3, "both outsiders and the spoofer must be rejected");
    assert_eq!(round.reject_votes, 0, "no rogue Reject may be counted");
    assert_eq!(round.votes_received, NUM_CLIENTS);
    assert!(round.accepted, "quorum stuffing must not veto the round");
}
