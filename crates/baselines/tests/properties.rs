//! Property-based tests for the baseline aggregators.

use baffle_baselines::aggregators::{
    geometric_median, krum, mean, median, multi_krum, trimmed_mean,
};
use proptest::prelude::*;

fn updates_strategy(n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-10.0_f32..10.0, dim..=dim), n..=n)
}

proptest! {
    /// All aggregators are permutation invariant (Krum up to tie-breaking
    /// on exact duplicates, which the strategy avoids w.h.p.).
    #[test]
    fn median_and_trimmed_mean_permutation_invariant(mut ups in updates_strategy(7, 4)) {
        let m1 = median(&ups).unwrap();
        let t1 = trimmed_mean(&ups, 2).unwrap();
        ups.reverse();
        let m2 = median(&ups).unwrap();
        let t2 = trimmed_mean(&ups, 2).unwrap();
        for (a, b) in m1.iter().zip(&m2) {
            prop_assert!((a - b).abs() < 1e-5);
        }
        for (a, b) in t1.iter().zip(&t2) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Median and trimmed mean are bounded coordinate-wise by the input
    /// range (a breakdown-point property plain mean lacks).
    #[test]
    fn robust_rules_stay_within_coordinate_range(ups in updates_strategy(9, 3)) {
        let med = median(&ups).unwrap();
        let trim = trimmed_mean(&ups, 3).unwrap();
        for d in 0..3 {
            let lo = ups.iter().map(|u| u[d]).fold(f32::INFINITY, f32::min);
            let hi = ups.iter().map(|u| u[d]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!((lo - 1e-4..=hi + 1e-4).contains(&med[d]));
            prop_assert!((lo - 1e-4..=hi + 1e-4).contains(&trim[d]));
        }
    }

    /// Krum always returns one of the inputs.
    #[test]
    fn krum_selects_an_input(ups in updates_strategy(8, 3)) {
        let k = krum(&ups, 2).unwrap();
        prop_assert!(ups.contains(&k));
    }

    /// Multi-Krum with m = n equals the mean.
    #[test]
    fn multi_krum_full_selection_is_mean(ups in updates_strategy(7, 3)) {
        let mk = multi_krum(&ups, 1, 7).unwrap();
        let m = mean(&ups).unwrap();
        for (a, b) in mk.iter().zip(&m) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// The geometric median never leaves the bounding box of the inputs.
    #[test]
    fn geometric_median_in_bounding_box(ups in updates_strategy(6, 3)) {
        let gm = geometric_median(&ups, 60, 1e-6).unwrap();
        for d in 0..3 {
            let lo = ups.iter().map(|u| u[d]).fold(f32::INFINITY, f32::min);
            let hi = ups.iter().map(|u| u[d]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!((lo - 1e-2..=hi + 1e-2).contains(&gm[d]), "{} outside [{lo}, {hi}]", gm[d]);
        }
    }

    /// Replacing one update with an arbitrarily large outlier moves the
    /// median by a bounded amount (robustness), while it moves the mean
    /// unboundedly.
    #[test]
    fn median_is_robust_to_one_outlier(ups in updates_strategy(9, 2), scale in 100.0_f32..10_000.0) {
        let clean_med = median(&ups).unwrap();
        let mut poisoned = ups.clone();
        poisoned[0] = vec![scale, -scale];
        let med = median(&poisoned).unwrap();
        for d in 0..2 {
            let lo = ups.iter().map(|u| u[d]).fold(f32::INFINITY, f32::min);
            let hi = ups.iter().map(|u| u[d]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!((lo - 1e-3..=hi + 1e-3).contains(&med[d]));
        }
        // And the mean is dragged towards the outlier far more.
        let m = mean(&poisoned).unwrap();
        prop_assert!( (m[0] - clean_med[0]).abs() >= (med[0] - clean_med[0]).abs() );
    }
}
