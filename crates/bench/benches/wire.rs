//! Wire-codec benchmarks: the cost of serialising the model history that
//! the server ships to each validating client (§VI-D), per codec.

use baffle_bench::params;
use baffle_nn::wire;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_encode");
    for &len in &[2_762usize, 10_718, 100_000] {
        group.throughput(Throughput::Elements(len as u64));
        let p = params(len, 21);
        group.bench_with_input(BenchmarkId::new("f32", len), &p, |b, p| {
            b.iter(|| wire::encode_f32(black_box(p)));
        });
        group.bench_with_input(BenchmarkId::new("q8", len), &p, |b, p| {
            b.iter(|| wire::encode_q8(black_box(p)));
        });
        group.bench_with_input(BenchmarkId::new("q4", len), &p, |b, p| {
            b.iter(|| wire::encode_q4(black_box(p)));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_decode");
    {
        let &len = &10_718usize;
        group.throughput(Throughput::Elements(len as u64));
        let p = params(len, 22);
        let f = wire::encode_f32(&p);
        let q8 = wire::encode_q8(&p).unwrap();
        let q4 = wire::encode_q4(&p).unwrap();
        group.bench_function(BenchmarkId::new("f32", len), |b| {
            b.iter(|| wire::decode_f32(black_box(&f)).unwrap());
        });
        group.bench_function(BenchmarkId::new("q8", len), |b| {
            b.iter(|| wire::decode_q8(black_box(&q8)).unwrap());
        });
        group.bench_function(BenchmarkId::new("q4", len), |b| {
            b.iter(|| wire::decode_q4(black_box(&q4)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
