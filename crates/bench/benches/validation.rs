//! Cost of one VALIDATE call (Algorithm 2) as a function of the look-back
//! window ℓ and the validation-set size — the per-round, per-validator
//! cost a deployment pays for the feedback loop.

use baffle_bench::cifar_fixture;
use baffle_core::{ValidationConfig, Validator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_validate_lookback(c: &mut Criterion) {
    let mut group = c.benchmark_group("validate_by_lookback");
    group.sample_size(20);
    for &ell in &[10usize, 20, 30] {
        let fixture = cifar_fixture(200, ell + 2, 7);
        let validator = Validator::new(ValidationConfig::new(ell));
        let (current, history) = fixture.history.split_last().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(ell), &ell, |b, _| {
            b.iter(|| {
                validator
                    .validate(black_box(current), black_box(history), black_box(&fixture.data))
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_validate_dataset_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("validate_by_dataset_size");
    group.sample_size(20);
    for &samples in &[50usize, 200, 1000] {
        let fixture = cifar_fixture(samples, 22, 9);
        let validator = Validator::new(ValidationConfig::new(20));
        let (current, history) = fixture.history.split_last().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, _| {
            b.iter(|| {
                validator
                    .validate(black_box(current), black_box(history), black_box(&fixture.data))
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_validate_lookback, bench_validate_dataset_size);
criterion_main!(benches);
