//! The feedback loop's server side: quorum voting (Algorithm 1, §IV-B).

use baffle_attack::voting::Vote;
use serde::{Deserialize, Serialize};

/// The server's decision about the round's global update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// Enough validators flagged the model: discard it and keep the
    /// previous global model (`G^r ← G^{r−1}`).
    Rejected,
    /// The update is integrated (`G^r ← G'`).
    Accepted,
}

impl Decision {
    /// Whether the update was accepted.
    pub fn is_accepted(self) -> bool {
        matches!(self, Decision::Accepted)
    }
}

/// The quorum rule of Algorithm 1: reject iff at least `q` of the `n`
/// validators vote "poisoned".
///
/// Following footnote 1 of the paper, non-responding validators count as
/// implicit accepts — the server rejects only on **q explicit reject
/// votes**, so dropouts cannot stall training.
///
/// # Example
///
/// ```
/// use baffle_core::{QuorumRule, Decision, Vote};
///
/// let rule = QuorumRule::new(10, 5).unwrap();
/// let votes = vec![Vote::Reject; 5];
/// assert_eq!(rule.decide(&votes), Decision::Rejected);
/// let votes = vec![Vote::Reject, Vote::Reject, Vote::Accept];
/// assert_eq!(rule.decide(&votes), Decision::Accepted);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuorumRule {
    n: usize,
    q: usize,
}

/// Error constructing a [`QuorumRule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidQuorum {
    n: usize,
    q: usize,
}

impl std::fmt::Display for InvalidQuorum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "quorum threshold q={} is not in 1..={} (n validators)", self.q, self.n)
    }
}

impl std::error::Error for InvalidQuorum {}

impl QuorumRule {
    /// Creates the rule for `n` validators with quorum threshold `q`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidQuorum`] unless `1 ≤ q ≤ n`.
    pub fn new(n: usize, q: usize) -> Result<Self, InvalidQuorum> {
        if q == 0 || q > n {
            return Err(InvalidQuorum { n, q });
        }
        Ok(Self { n, q })
    }

    /// Number of validators `n`.
    pub fn validators(&self) -> usize {
        self.n
    }

    /// Quorum threshold `q`.
    pub fn threshold(&self) -> usize {
        self.q
    }

    /// Applies the rule to the received votes (missing votes are implicit
    /// accepts).
    pub fn decide(&self, votes: &[Vote]) -> Decision {
        let rejects = votes.iter().filter(|v| matches!(v, Vote::Reject)).count();
        if rejects >= self.q {
            Decision::Rejected
        } else {
            Decision::Accepted
        }
    }
}

/// The feasible quorum range `n_M < q ≤ n − n_M` of §IV-B for `n`
/// validators of which up to `n_m` are malicious, in the ideal case where
/// every honest validator judges correctly (`ρ = 1`).
///
/// Returns `None` when no such `q` exists (i.e. `n_m ≥ n/2`: no honest
/// majority).
pub fn quorum_bounds(n: usize, n_m: usize) -> Option<(usize, usize)> {
    let lo = n_m + 1; // q > n_M
    let hi = n.checked_sub(n_m)?; // q ≤ n − n_M
    if lo <= hi {
        Some((lo, hi))
    } else {
        None
    }
}

/// The paper's ρ-relaxed quorum recommendation `q := ρ·(n − n_M)`
/// (§IV-B), where `ρ` is the empirical fraction of honest validators that
/// judge the model correctly. Rounded to the nearest integer and clamped
/// to at least 1.
///
/// # Panics
///
/// Panics if `rho` is not in `(0, 1]` or `n_m ≥ n`.
pub fn recommended_quorum(n: usize, n_m: usize, rho: f64) -> usize {
    assert!(rho > 0.0 && rho <= 1.0, "recommended_quorum: rho must be in (0, 1], got {rho}");
    assert!(n_m < n, "recommended_quorum: n_m={n_m} must be below n={n}");
    ((rho * (n - n_m) as f64).round() as usize).max(1)
}

/// Maximum number of malicious validators tolerable given `ρ` (§VI-C):
/// `n_M < (1 − ρ̄)·n / (2 − ρ̄)` where `ρ̄ = 1 − ρ` is the error rate of
/// honest validators. The paper states the bound as
/// `n_M < (1 − ρ)·n / (2 − ρ)` with its ρ denoting the *erring* fraction;
/// we follow the paper's formula literally.
///
/// # Panics
///
/// Panics if `rho` is not in `[0, 1)`.
pub fn max_tolerable_malicious(n: usize, rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "max_tolerable_malicious: rho must be in [0, 1)");
    (1.0 - rho) * n as f64 / (2.0 - rho)
}

/// The complete server-side feedback loop state for one deployment:
/// quorum rule plus accept/reject bookkeeping across rounds.
#[derive(Debug, Clone)]
pub struct FeedbackLoop {
    rule: QuorumRule,
    accepted: usize,
    rejected: usize,
}

impl FeedbackLoop {
    /// Creates a loop with the given quorum rule.
    pub fn new(rule: QuorumRule) -> Self {
        Self { rule, accepted: 0, rejected: 0 }
    }

    /// The configured quorum rule.
    pub fn rule(&self) -> QuorumRule {
        self.rule
    }

    /// Processes one round's votes, recording and returning the decision.
    pub fn process_round(&mut self, votes: &[Vote]) -> Decision {
        let d = self.rule.decide(votes);
        match d {
            Decision::Accepted => self.accepted += 1,
            Decision::Rejected => self.rejected += 1,
        }
        d
    }

    /// Rounds accepted so far.
    pub fn accepted_rounds(&self) -> usize {
        self.accepted
    }

    /// Rounds rejected so far.
    pub fn rejected_rounds(&self) -> usize {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_at_exact_quorum() {
        let rule = QuorumRule::new(10, 3).unwrap();
        assert_eq!(rule.decide(&[Vote::Reject; 3]), Decision::Rejected);
        assert_eq!(rule.decide(&[Vote::Reject, Vote::Reject]), Decision::Accepted);
    }

    #[test]
    fn missing_votes_are_implicit_accepts() {
        // Only 2 of 10 validators respond, both rejecting; q = 3 not met.
        let rule = QuorumRule::new(10, 3).unwrap();
        assert_eq!(rule.decide(&[Vote::Reject, Vote::Reject]), Decision::Accepted);
    }

    #[test]
    fn accepts_do_not_count_towards_quorum() {
        let rule = QuorumRule::new(5, 2).unwrap();
        let votes = [Vote::Accept, Vote::Accept, Vote::Accept, Vote::Accept, Vote::Reject];
        assert_eq!(rule.decide(&votes), Decision::Accepted);
    }

    #[test]
    fn invalid_quorums_are_rejected() {
        assert!(QuorumRule::new(5, 0).is_err());
        assert!(QuorumRule::new(5, 6).is_err());
        assert!(QuorumRule::new(5, 5).is_ok());
        let err = QuorumRule::new(5, 6).unwrap_err();
        assert!(err.to_string().contains("q=6"));
    }

    #[test]
    fn quorum_bounds_match_section_4b() {
        // n = 10, n_M = 3: 3 < q ≤ 7.
        assert_eq!(quorum_bounds(10, 3), Some((4, 7)));
        // No honest majority: no feasible quorum.
        assert_eq!(quorum_bounds(10, 5), None);
        assert_eq!(quorum_bounds(10, 0), Some((1, 10)));
    }

    #[test]
    fn recommended_quorum_formula() {
        // Paper §IV-B: q := ρ (n − n_M). With ρ = 0.5, n = 10, n_M = 0 → 5.
        assert_eq!(recommended_quorum(10, 0, 0.5), 5);
        assert_eq!(recommended_quorum(10, 2, 0.5), 4);
        assert_eq!(recommended_quorum(10, 9, 0.1), 1);
    }

    #[test]
    fn tolerable_malicious_matches_paper_examples() {
        // §VI-C: ρ = 0.4 → n_M < 3.75; ρ = 0.5 → n_M < 3.33 (n = 10).
        assert!((max_tolerable_malicious(10, 0.4) - 3.75).abs() < 1e-9);
        assert!((max_tolerable_malicious(10, 0.5) - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn feedback_loop_counts_decisions() {
        let mut fl = FeedbackLoop::new(QuorumRule::new(3, 2).unwrap());
        assert_eq!(fl.process_round(&[Vote::Reject, Vote::Reject]), Decision::Rejected);
        assert_eq!(fl.process_round(&[Vote::Accept, Vote::Reject]), Decision::Accepted);
        assert_eq!(fl.accepted_rounds(), 1);
        assert_eq!(fl.rejected_rounds(), 1);
    }

    #[test]
    fn rejection_monotone_in_reject_votes() {
        // Adding reject votes can only flip Accepted → Rejected.
        let rule = QuorumRule::new(10, 4).unwrap();
        let mut votes = vec![Vote::Accept; 10];
        let mut last_rejected = false;
        for i in 0..10 {
            votes[i] = Vote::Reject;
            let rejected = rule.decide(&votes) == Decision::Rejected;
            assert!(rejected || !last_rejected);
            last_rejected = rejected;
        }
        assert!(last_rejected);
    }
}
