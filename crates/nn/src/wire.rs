//! Wire format for model parameters.
//!
//! The feedback loop requires the server to ship the history of the last
//! `ℓ+1` accepted global models to each validating client (paper §VI-D).
//! This module provides the codecs used to measure that communication
//! overhead: a lossless little-endian `f32` codec and lossy linear
//! quantisation codecs (8-bit and 4-bit) standing in for the
//! model-compression techniques the paper cites for its "reduce by ×10"
//! estimate.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// How a wire buffer failed to decode.
///
/// The distinction matters at the server's intake: a [`Malformed`]
/// buffer was *built* wrong (the sender is misbehaving — reject and
/// settle its slot), while a [`Corrupted`] buffer was built correctly
/// and damaged in flight (the checksum no longer matches — blame the
/// link, not the node).
///
/// [`Malformed`]: DecodeErrorKind::Malformed
/// [`Corrupted`]: DecodeErrorKind::Corrupted
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeErrorKind {
    /// Structurally invalid: truncated, wrong magic, wrong codec.
    Malformed,
    /// Structurally valid but the payload checksum does not match: the
    /// bytes were damaged after encoding.
    Corrupted,
}

/// Error returned when decoding malformed wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    what: &'static str,
    kind: DecodeErrorKind,
}

impl DecodeError {
    fn new(what: &'static str) -> Self {
        Self { what, kind: DecodeErrorKind::Malformed }
    }

    fn corrupted(what: &'static str) -> Self {
        Self { what, kind: DecodeErrorKind::Corrupted }
    }

    /// What kind of failure this is.
    pub fn kind(&self) -> DecodeErrorKind {
        self.kind
    }

    /// Whether the buffer was damaged in flight (checksum mismatch)
    /// rather than built wrong by the sender.
    pub fn is_corruption(&self) -> bool {
        self.kind == DecodeErrorKind::Corrupted
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let adjective = match self.kind {
            DecodeErrorKind::Malformed => "malformed",
            DecodeErrorKind::Corrupted => "corrupted",
        };
        write!(f, "{adjective} model wire data: {}", self.what)
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a over the payload bytes — cheap, dependency-free, and plenty to
/// catch the bit flips the chaos transport injects (this is an integrity
/// check against line noise, not an authenticator).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

const MAGIC_F32: u32 = 0xBAFF_1E32;
const MAGIC_Q8: u32 = 0xBAFF_1E08;
const MAGIC_Q4: u32 = 0xBAFF_1E04;

/// Encodes a parameter vector losslessly (little-endian `f32`).
///
/// # Example
///
/// ```
/// let p = vec![1.0, -2.5, 0.0];
/// let bytes = baffle_nn::wire::encode_f32(&p);
/// let back = baffle_nn::wire::decode_f32(&bytes)?;
/// assert_eq!(p, back);
/// # Ok::<(), baffle_nn::wire::DecodeError>(())
/// ```
pub fn encode_f32(params: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(F32_HEADER + params.len() * 4);
    buf.put_u32_le(MAGIC_F32);
    buf.put_u32_le(params.len() as u32);
    buf.put_u32_le(0); // checksum placeholder
    for &p in params {
        buf.put_f32_le(p);
    }
    let sum = fnv1a(&buf[F32_HEADER..]);
    buf[8..12].copy_from_slice(&sum.to_le_bytes());
    buf.freeze()
}

/// Byte offset where the `f32` codec's payload starts (magic + length +
/// checksum). Public so the fault injector can corrupt payload bytes
/// without touching the framing.
pub const F32_HEADER: usize = 12;

/// Decodes a vector produced by [`encode_f32`].
///
/// # Errors
///
/// Returns [`DecodeError`] if the buffer is truncated or has the wrong
/// magic number ([`DecodeErrorKind::Malformed`]), or if the payload
/// checksum does not match ([`DecodeErrorKind::Corrupted`] — the buffer
/// was damaged after encoding).
pub fn decode_f32(mut bytes: &[u8]) -> Result<Vec<f32>, DecodeError> {
    if bytes.remaining() < F32_HEADER {
        return Err(DecodeError::new("header truncated"));
    }
    if bytes.get_u32_le() != MAGIC_F32 {
        return Err(DecodeError::new("bad magic for f32 codec"));
    }
    let n = bytes.get_u32_le() as usize;
    let expected_sum = bytes.get_u32_le();
    if bytes.remaining() < n * 4 {
        return Err(DecodeError::new("payload truncated"));
    }
    if fnv1a(&bytes[..n * 4]) != expected_sum {
        return Err(DecodeError::corrupted("payload checksum mismatch"));
    }
    Ok((0..n).map(|_| bytes.get_f32_le()).collect())
}

/// Encodes with linear 8-bit quantisation (≈4× smaller than `f32`).
///
/// Values are mapped to `[-127, 127]` around the min/max range; the scale
/// is stored in the header so decoding is self-contained.
pub fn encode_q8(params: &[f32]) -> Bytes {
    let (lo, hi) = min_max(params);
    let scale = ((hi - lo) / 254.0).max(f32::MIN_POSITIVE);
    let mut buf = BytesMut::with_capacity(16 + params.len());
    buf.put_u32_le(MAGIC_Q8);
    buf.put_u32_le(params.len() as u32);
    buf.put_f32_le(lo);
    buf.put_f32_le(scale);
    for &p in params {
        let q = ((p - lo) / scale).round().clamp(0.0, 254.0) as u8;
        buf.put_u8(q);
    }
    buf.freeze()
}

/// Decodes a vector produced by [`encode_q8`]. Lossy: values are
/// reconstructed to within one quantisation step.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or mislabeled input.
pub fn decode_q8(mut bytes: &[u8]) -> Result<Vec<f32>, DecodeError> {
    if bytes.remaining() < 16 {
        return Err(DecodeError::new("header truncated"));
    }
    if bytes.get_u32_le() != MAGIC_Q8 {
        return Err(DecodeError::new("bad magic for q8 codec"));
    }
    let n = bytes.get_u32_le() as usize;
    let lo = bytes.get_f32_le();
    let scale = bytes.get_f32_le();
    if bytes.remaining() < n {
        return Err(DecodeError::new("payload truncated"));
    }
    Ok((0..n).map(|_| lo + bytes.get_u8() as f32 * scale).collect())
}

/// Encodes with linear 4-bit quantisation (≈8× smaller than `f32`);
/// two values per byte.
pub fn encode_q4(params: &[f32]) -> Bytes {
    let (lo, hi) = min_max(params);
    let scale = ((hi - lo) / 15.0).max(f32::MIN_POSITIVE);
    let mut buf = BytesMut::with_capacity(16 + params.len().div_ceil(2));
    buf.put_u32_le(MAGIC_Q4);
    buf.put_u32_le(params.len() as u32);
    buf.put_f32_le(lo);
    buf.put_f32_le(scale);
    let quant = |p: f32| ((p - lo) / scale).round().clamp(0.0, 15.0) as u8;
    for pair in params.chunks(2) {
        let hi4 = quant(pair[0]);
        let lo4 = if pair.len() == 2 { quant(pair[1]) } else { 0 };
        buf.put_u8((hi4 << 4) | lo4);
    }
    buf.freeze()
}

/// Decodes a vector produced by [`encode_q4`]. Lossy.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or mislabeled input.
pub fn decode_q4(mut bytes: &[u8]) -> Result<Vec<f32>, DecodeError> {
    if bytes.remaining() < 16 {
        return Err(DecodeError::new("header truncated"));
    }
    if bytes.get_u32_le() != MAGIC_Q4 {
        return Err(DecodeError::new("bad magic for q4 codec"));
    }
    let n = bytes.get_u32_le() as usize;
    let lo = bytes.get_f32_le();
    let scale = bytes.get_f32_le();
    if bytes.remaining() < n.div_ceil(2) {
        return Err(DecodeError::new("payload truncated"));
    }
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let b = bytes.get_u8();
        out.push(lo + (b >> 4) as f32 * scale);
        if out.len() < n {
            out.push(lo + (b & 0x0F) as f32 * scale);
        }
    }
    Ok(out)
}

fn min_max(params: &[f32]) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &p in params {
        lo = lo.min(p);
        hi = hi.max(p);
    }
    if !lo.is_finite() || !hi.is_finite() {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_params(n: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(99);
        baffle_tensor::rng::normal_vec(&mut rng, n, 0.0, 0.3)
    }

    #[test]
    fn f32_roundtrip_is_exact() {
        let p = sample_params(1000);
        assert_eq!(decode_f32(&encode_f32(&p)).unwrap(), p);
    }

    #[test]
    fn f32_empty_roundtrip() {
        let p: Vec<f32> = Vec::new();
        assert_eq!(decode_f32(&encode_f32(&p)).unwrap(), p);
    }

    #[test]
    fn q8_roundtrip_within_one_step() {
        let p = sample_params(1000);
        let back = decode_q8(&encode_q8(&p)).unwrap();
        let (lo, hi) = super::min_max(&p);
        let step = (hi - lo) / 254.0;
        for (&a, &b) in p.iter().zip(&back) {
            assert!((a - b).abs() <= step, "{a} vs {b}, step {step}");
        }
    }

    #[test]
    fn q4_roundtrip_within_one_step() {
        let p = sample_params(1001); // odd length exercises the padding path
        let back = decode_q4(&encode_q4(&p)).unwrap();
        assert_eq!(back.len(), p.len());
        let (lo, hi) = super::min_max(&p);
        let step = (hi - lo) / 15.0;
        for (&a, &b) in p.iter().zip(&back) {
            assert!((a - b).abs() <= step, "{a} vs {b}, step {step}");
        }
    }

    #[test]
    fn compression_ratios() {
        let p = sample_params(10_000);
        let f = encode_f32(&p).len();
        let q8 = encode_q8(&p).len();
        let q4 = encode_q4(&p).len();
        assert!(f as f32 / q8 as f32 > 3.9, "q8 ratio {}", f as f32 / q8 as f32);
        assert!(f as f32 / q4 as f32 > 7.8, "q4 ratio {}", f as f32 / q4 as f32);
    }

    #[test]
    fn constant_vector_quantises_exactly() {
        let p = vec![0.5; 100];
        let back = decode_q8(&encode_q8(&p)).unwrap();
        for &b in &back {
            assert!((b - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn payload_bit_flip_is_reported_as_corruption() {
        let p = sample_params(64);
        let enc = encode_f32(&p);
        let mut damaged = enc.to_vec();
        damaged[F32_HEADER + 17] ^= 0x40;
        let err = decode_f32(&damaged).unwrap_err();
        assert!(err.is_corruption(), "bit flip must be detected as corruption: {err}");
        assert_eq!(err.kind(), DecodeErrorKind::Corrupted);
        // Structural damage is *not* corruption: a truncated buffer and a
        // wrong-codec buffer are the sender's fault.
        let err = decode_f32(&enc[..enc.len() - 1]).unwrap_err();
        assert!(!err.is_corruption());
        let err = decode_f32(&encode_q8(&p)).unwrap_err();
        assert!(!err.is_corruption());
    }

    #[test]
    fn truncated_input_errors() {
        let p = sample_params(10);
        let enc = encode_f32(&p);
        assert!(decode_f32(&enc[..enc.len() - 1]).is_err());
        assert!(decode_f32(&enc[..4]).is_err());
    }

    #[test]
    fn wrong_magic_errors() {
        let p = sample_params(10);
        let enc = encode_q8(&p);
        assert!(decode_f32(&enc).is_err());
        let enc = encode_f32(&p);
        assert!(decode_q8(&enc).is_err());
        assert!(decode_q4(&enc).is_err());
    }

    #[test]
    fn decode_error_displays() {
        let err = decode_f32(&[]).unwrap_err();
        assert!(err.to_string().contains("malformed"));
    }
}
