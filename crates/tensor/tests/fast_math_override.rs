//! Runtime fast-math override behaviour.
//!
//! `gemm::set_fast_math` mutates process-global dispatch state, so this
//! lives in its own test binary and runs as a SINGLE test function —
//! the libtest harness runs sibling tests concurrently, and a second
//! test toggling the override would race this one.

use baffle_tensor::gemm;

/// One serial-sized product per toggle state, checked bitwise against
/// the kernel the dispatcher is documented to route to.
#[test]
fn override_controls_dispatch_and_fma_tally() {
    let from_env = gemm::fast_math_enabled();
    let (m, k, n) = (7, 19, 11);
    let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.53).cos()).collect();

    let mut exact = vec![0.0f32; m * n];
    gemm::naive_nn(m, k, n, &a, &b, &mut exact);
    let mut fast = vec![0.0f32; m * n];
    gemm::fast_nn(m, k, n, &a, &b, &mut fast);

    // Forced OFF: the dispatcher must be bit-identical to the exact
    // reference regardless of the environment.
    gemm::set_fast_math(Some(false));
    assert!(!gemm::fast_math_enabled(), "Some(false) override must win over the env");
    let mut out = vec![0.0f32; m * n];
    gemm::nn(m, k, n, &a, &b, &mut out);
    for (x, y) in out.iter().zip(&exact) {
        assert_eq!(x.to_bits(), y.to_bits(), "forced-off dispatch diverged from exact");
    }

    // Forced ON: with SIMD available the dispatcher must match the fast
    // kernel bitwise and tally the call under `fma`; without SIMD the
    // fast tier never engages and the scalar exact kernel runs.
    gemm::set_fast_math(Some(true));
    assert!(gemm::fast_math_enabled(), "Some(true) override must win over the env");
    gemm::reset_dispatch_counts();
    let mut out = vec![0.0f32; m * n];
    gemm::nn(m, k, n, &a, &b, &mut out);
    let counts = gemm::dispatch_counts();
    if gemm::simd_enabled() {
        for (x, y) in out.iter().zip(&fast) {
            assert_eq!(x.to_bits(), y.to_bits(), "forced-on dispatch diverged from fast kernel");
        }
        assert_eq!(counts.fma, 1, "serial fast call must tally under fma: {counts:?}");
        assert_eq!(counts.simd, 0, "fast call must not tally under simd: {counts:?}");
    } else {
        for (x, y) in out.iter().zip(&exact) {
            assert_eq!(x.to_bits(), y.to_bits(), "no-SIMD dispatch diverged from exact");
        }
        assert_eq!(counts.fma, 0, "scalar tier must not tally under fma: {counts:?}");
    }

    // Batched entry points tally under `batched` in either state.
    gemm::reset_dispatch_counts();
    let mut out = vec![0.0f32; m * n];
    gemm::concat_nn(m, k, n, &a, &b, &mut out);
    let mut out2 = vec![0.0f32; 2 * m * n];
    let a2: Vec<f32> = a.iter().chain(&a).copied().collect();
    let b2: Vec<f32> = b.iter().chain(&b).copied().collect();
    gemm::batched_nn(2, m, k, n, &a2, &b2, &mut out2);
    assert_eq!(gemm::dispatch_counts().batched, 2, "concat + batched must tally twice");

    // Clearing the override restores env-derived behaviour.
    gemm::set_fast_math(None);
    assert_eq!(gemm::fast_math_enabled(), from_env, "None must restore the env default");
}
