//! Property-based tests for the defense's algebraic components.

use baffle_core::feedback::{
    max_tolerable_malicious, quorum_bounds, recommended_quorum, QuorumRule,
};
use baffle_core::metrics::{mean_std, DetectionCounts};
use baffle_core::variation::variation_from_confusions;
use baffle_core::Vote;
use baffle_nn::ConfusionMatrix;
use proptest::prelude::*;

fn confusion_strategy(classes: usize) -> impl Strategy<Value = ConfusionMatrix> {
    prop::collection::vec((0..classes, 0..classes), 1..80).prop_map(move |pairs| {
        let mut cm = ConfusionMatrix::new(classes);
        for (t, p) in pairs {
            cm.record(t, p);
        }
        cm
    })
}

proptest! {
    /// Variation vectors are antisymmetric and bounded in [-1, 1].
    #[test]
    fn variation_antisymmetric_and_bounded(a in confusion_strategy(4), b in confusion_strategy(4)) {
        let ab = variation_from_confusions(&a, &b);
        let ba = variation_from_confusions(&b, &a);
        prop_assert_eq!(ab.len(), 8);
        for (&x, &y) in ab.iter().zip(&ba) {
            prop_assert!((x + y).abs() < 1e-5);
            prop_assert!((-1.0..=1.0).contains(&x));
        }
    }

    /// v(f, f) = 0 for any confusion matrix.
    #[test]
    fn self_variation_is_zero(a in confusion_strategy(5)) {
        let v = variation_from_confusions(&a, &a);
        prop_assert!(v.iter().all(|&x| x == 0.0));
    }

    /// The quorum decision is monotone: adding reject votes never flips
    /// Rejected back to Accepted.
    #[test]
    fn quorum_monotone(n in 1usize..20, q in 1usize..20, rejects in 0usize..20) {
        prop_assume!(q <= n);
        let rule = QuorumRule::new(n, q).unwrap();
        let rejects = rejects.min(n);
        let mk = |r: usize| {
            let mut v = vec![Vote::Accept; n];
            for slot in v.iter_mut().take(r) {
                *slot = Vote::Reject;
            }
            v
        };
        let d1 = rule.decide(&mk(rejects));
        if rejects < n {
            let d2 = rule.decide(&mk(rejects + 1));
            // d2 can only be "more rejected" than d1.
            prop_assert!(!(d1 == baffle_core::Decision::Rejected && d2 == baffle_core::Decision::Accepted));
        }
        // Exact threshold semantics.
        prop_assert_eq!(d1 == baffle_core::Decision::Rejected, rejects >= q);
    }

    /// quorum_bounds returns a feasible, §IV-B-consistent interval exactly
    /// when there is an honest majority.
    #[test]
    fn quorum_bounds_consistent(n in 1usize..50, n_m in 0usize..50) {
        match quorum_bounds(n, n_m) {
            Some((lo, hi)) => {
                prop_assert!(lo > n_m);
                prop_assert!(hi <= n - n_m);
                prop_assert!(lo <= hi);
                prop_assert!(2 * n_m < n + 1, "bounds exist without honest majority: n={n}, n_m={n_m}");
            }
            None => prop_assert!(n_m >= n || 2 * n_m >= n, "missing bounds for n={n}, n_m={n_m}"),
        }
    }

    /// The recommended quorum is within [1, n − n_m].
    #[test]
    fn recommended_quorum_in_range(n in 2usize..40, n_m in 0usize..40, rho in 0.05f64..1.0) {
        prop_assume!(n_m < n);
        let q = recommended_quorum(n, n_m, rho);
        prop_assert!(q >= 1);
        prop_assert!(q <= n - n_m);
    }

    /// Tolerable-malicious bound is below n/2 (honest majority) and
    /// decreasing in the erring fraction.
    #[test]
    fn tolerable_malicious_bounds(n in 1usize..100, rho in 0.0f64..0.97) {
        let t = max_tolerable_malicious(n, rho);
        prop_assert!(t <= n as f64 / 2.0 + 1e-9);
        // Monotone decreasing in the erring fraction.
        let t2 = max_tolerable_malicious(n, rho + 0.01);
        prop_assert!(t2 <= t + 1e-9);
    }

    /// DetectionCounts rates are probabilities, and merge preserves totals.
    #[test]
    fn detection_counts_sane(obs in prop::collection::vec((any::<bool>(), any::<bool>()), 0..50)) {
        let mut c = DetectionCounts::default();
        for &(p, r) in &obs {
            c.record(p, r);
        }
        prop_assert_eq!(c.total(), obs.len());
        for rate in [c.false_positive_rate(), c.false_negative_rate(), c.accuracy()] {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
        let mut merged = DetectionCounts::default();
        merged.merge(&c);
        merged.merge(&c);
        prop_assert_eq!(merged.total(), 2 * obs.len());
    }

    /// mean_std: the std is zero iff all values are equal, and the mean is
    /// within [min, max].
    #[test]
    fn mean_std_bounds(xs in prop::collection::vec(-100.0f64..100.0, 1..30)) {
        let (m, s) = mean_std(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        prop_assert!(s >= 0.0);
        prop_assert!(s <= (hi - lo) + 1e-9);
    }
}
