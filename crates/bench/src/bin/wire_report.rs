//! Emits a machine-readable wire-cost summary (`BENCH_wire.json` on CI):
//! the §VI-D communication-overhead analysis done with the real codecs
//! and the real transport.
//!
//! Three sections:
//!
//! - **analytic**: exact encoded sizes per codec at three model scales,
//!   and the per-validator history-window cost (ℓ+1 models) they imply —
//!   the paper's "reduce communication by ×10" estimate, recomputed;
//! - **measured**: a small deployment run once per [`WireProfile`] over
//!   the loopback TCP transport, reporting actual frame bytes on the
//!   wire and history bytes shipped per round;
//! - **frames_per_sec**: a loopback microbench of the frame codec +
//!   socket path on minimal envelopes.
//!
//! The binary asserts the headline claim instead of just printing it:
//! quantised history shipping (q4 dense, or the top-k chain in steady
//! state) must undercut lossless f32 by at least 4×.
//!
//! Run with `cargo run --release -p baffle-bench --bin wire_report`.

use baffle_fl::WireProfile;
use baffle_net::deployment::{Deployment, DeploymentConfig, DeploymentOutcome};
use baffle_net::fault::FaultPlan;
use baffle_net::message::{Message, NodeId};
use baffle_net::socket::{SocketKind, TransportMode};
use baffle_net::transport::Network;
use baffle_nn::wire::{self, Codec};
use baffle_tensor::pool;
use std::time::Instant;

/// ℓ, the paper's chosen look-back window for the overhead analysis.
const ELL: usize = 20;

struct ModelScale {
    name: &'static str,
    params: usize,
}

/// Steady-state top-k chain cost per entry: one sparse delta keeping
/// `keep` coordinates (u32 index + f32 value each, after the header).
fn topk_entry_bytes(keep: usize) -> usize {
    16 + 8 * keep
}

fn run_profile(profile: WireProfile) -> DeploymentOutcome {
    let mut config = DeploymentConfig::small(77);
    config.transport = TransportMode::Socket(SocketKind::Tcp);
    config.wire_profile = profile;
    Deployment::run(config)
}

fn frames_per_sec() -> f64 {
    let network =
        Network::with_transport(FaultPlan::lossless(0), TransportMode::Socket(SocketKind::Tcp));
    let a = network.register(NodeId(1));
    let b = network.register(NodeId(2));
    let count = 20_000u64;
    let start = Instant::now();
    for round in 0..count {
        a.send(NodeId(2), Message::RoundResult { round, accepted: true });
    }
    for _ in 0..count {
        b.recv().expect("loopback frame lost");
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(network.wire_frames(), count, "every message must cross the wire exactly once");
    count as f64 / elapsed
}

fn main() {
    let scales = [
        ModelScale { name: "cifar-like substrate", params: 32 * 64 + 64 + 64 * 10 + 10 },
        ModelScale { name: "femnist-like substrate", params: 48 * 96 + 96 + 96 * 62 + 62 },
        ModelScale {
            name: "resnet18-scale (paper)",
            params: 512 * 2048 + 2048 + 2048 * 1024 + 1024 + 1024 * 10 + 10,
        },
    ];
    let compact = WireProfile::compact();

    println!("{{");
    println!("  \"bench\": \"wire\",");
    println!("  \"threads\": {},", pool::threads());
    println!("  \"lookback\": {ELL},");

    // ---- analytic: codec sizes and history-window cost ----
    println!("  \"analytic\": [");
    for (i, scale) in scales.iter().enumerate() {
        let n = scale.params;
        let f32_model = Codec::F32.encoded_len(n);
        let q8_model = Codec::Q8.encoded_len(n);
        let q4_model = Codec::Q4.encoded_len(n);
        let window = ELL + 1;
        let f32_history = f32_model * window;
        let q8_history = q8_model * window;
        let q4_history = q4_model * window;
        // Top-k chain in steady state: one dense q8 head amortised over
        // the window, then one sparse delta per subsequent entry.
        let keep = compact.history_keep(n).expect("compact profile keeps some");
        let topk_history = q8_model + topk_entry_bytes(keep) * ELL;
        let q4_reduction = f32_history as f64 / q4_history as f64;
        let topk_reduction = f32_history as f64 / topk_history as f64;
        assert!(
            q4_reduction >= 4.0,
            "{}: q4 history must be >=4x smaller than f32, got {q4_reduction:.2}x",
            scale.name
        );
        assert!(
            topk_reduction >= 4.0,
            "{}: top-k chain history must be >=4x smaller than f32, got {topk_reduction:.2}x",
            scale.name
        );
        println!("    {{");
        println!("      \"model\": \"{}\",", scale.name);
        println!("      \"params\": {n},");
        println!("      \"f32_model_bytes\": {f32_model},");
        println!("      \"q8_model_bytes\": {q8_model},");
        println!("      \"q4_model_bytes\": {q4_model},");
        println!("      \"f32_history_bytes\": {f32_history},");
        println!("      \"q8_history_bytes\": {q8_history},");
        println!("      \"q4_history_bytes\": {q4_history},");
        println!("      \"topk_history_bytes\": {topk_history},");
        println!("      \"q4_history_reduction\": {q4_reduction:.2},");
        println!("      \"topk_history_reduction\": {topk_reduction:.2}");
        println!("    }}{}", if i + 1 < scales.len() { "," } else { "" });
    }
    println!("  ],");

    // ---- measured: one small deployment per profile over loopback TCP ----
    let profiles = [WireProfile::lossless(), WireProfile::quantized(), WireProfile::compact()];
    let mut f32_history_shipped = 0usize;
    println!("  \"profiles\": [");
    for (i, profile) in profiles.iter().enumerate() {
        let start = Instant::now();
        let outcome = run_profile(*profile);
        let run_s = start.elapsed().as_secs_f64();
        let rounds = outcome.rounds.len();
        let history_shipped: usize = outcome.rounds.iter().map(|r| r.history_bytes_shipped).sum();
        assert!(outcome.wire_frames > 0, "socket transport must meter frames");
        if profile.label() == "f32" {
            f32_history_shipped = history_shipped;
        } else {
            assert!(
                history_shipped < f32_history_shipped,
                "{} profile must ship less history than f32 ({history_shipped} >= {f32_history_shipped})",
                profile.label()
            );
        }
        println!("    {{");
        println!("      \"profile\": \"{}\",", profile.label());
        println!("      \"rounds\": {rounds},");
        println!("      \"run_seconds\": {run_s:.3},");
        println!("      \"wire_bytes\": {},", outcome.wire_bytes);
        println!("      \"wire_frames\": {},", outcome.wire_frames);
        println!("      \"wire_bytes_per_round\": {},", outcome.wire_bytes / rounds as u64);
        println!("      \"history_bytes_shipped\": {history_shipped},");
        println!("      \"messages_sent\": {}", outcome.messages_sent);
        println!("    }}{}", if i + 1 < profiles.len() { "," } else { "" });
    }
    println!("  ],");

    // ---- frames/sec over loopback on minimal envelopes ----
    println!("  \"frames_per_sec\": {:.0}", frames_per_sec());
    println!("}}");
}
