//! Update-inspection defenses. These examine **individual** client
//! updates — exactly what secure aggregation forbids — which is the
//! paper's core argument for the feedback-loop design (§I, §VII).

use crate::{check_updates, BaselineError};
use baffle_tensor::ops;
use rand::Rng;

/// Norm clipping with Gaussian noise (Sun et al., "Can you really
/// backdoor federated learning?"): clip every update to `max_norm`,
/// average, then add `N(0, σ²)` noise per coordinate.
///
/// Defeats naive boosting (the boosted update is clipped back to an
/// honest magnitude) but not norm-bounded attacks, and requires seeing
/// raw updates.
///
/// # Errors
///
/// Returns [`BaselineError`] on empty or ragged input.
pub fn clip_and_noise<R: Rng + ?Sized>(
    updates: &[Vec<f32>],
    max_norm: f32,
    noise_std: f32,
    rng: &mut R,
) -> Result<Vec<f32>, BaselineError> {
    check_updates(updates)?;
    let clipped: Vec<Vec<f32>> = updates
        .iter()
        .map(|u| {
            let mut c = u.clone();
            ops::clip_norm(&mut c, max_norm);
            c
        })
        .collect();
    let mut out = ops::mean(&clipped);
    if noise_std > 0.0 {
        for o in &mut out {
            *o += noise_std * baffle_tensor::rng::standard_normal(rng);
        }
    }
    Ok(out)
}

/// FoolsGold (Fung et al.): down-weights clients whose *historical
/// aggregate* updates are mutually similar (sybils pushing the same
/// poisoned direction), using pairwise cosine similarity.
///
/// Faithful to the published scheme: per-client weights
/// `w_i = 1 − max_j cs(i, j)`, rescaled by the pardoning step and the
/// logit function. The paper notes it is defeated by a *single-client*
/// attack — there is no sybil cluster to find — which the comparison
/// harness demonstrates.
#[derive(Debug, Clone, Default)]
pub struct FoolsGold {
    /// Running sum of each client's updates across rounds, keyed by
    /// client id.
    histories: std::collections::HashMap<usize, Vec<f32>>,
}

impl FoolsGold {
    /// Creates an empty FoolsGold state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of clients with recorded history.
    pub fn tracked_clients(&self) -> usize {
        self.histories.len()
    }

    /// Records this round's per-client updates and returns the weighted
    /// aggregate.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError`] on empty/ragged input.
    pub fn aggregate(
        &mut self,
        client_ids: &[usize],
        updates: &[Vec<f32>],
    ) -> Result<Vec<f32>, BaselineError> {
        if client_ids.len() != updates.len() {
            return Err(BaselineError::Infeasible { what: "one client id per update" });
        }
        let dim = check_updates(updates)?;
        // Update histories.
        for (&id, u) in client_ids.iter().zip(updates) {
            let h = self.histories.entry(id).or_insert_with(|| vec![0.0; dim]);
            if h.len() != dim {
                return Err(BaselineError::LengthMismatch { expected: h.len(), got: dim });
            }
            ops::axpy(1.0, u, h);
        }

        let n = updates.len();
        // Pairwise cosine similarity of the *historical* directions.
        let mut max_cs = vec![0.0_f32; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let hi = &self.histories[&client_ids[i]];
                let hj = &self.histories[&client_ids[j]];
                let cs = cosine(hi, hj);
                if cs > max_cs[i] {
                    max_cs[i] = cs;
                }
            }
        }
        // Pardoning: rescale by the row-wise maxima ratio.
        let global_max = max_cs.iter().cloned().fold(0.0_f32, f32::max).max(1e-9);
        let mut weights: Vec<f32> = max_cs
            .iter()
            .map(|&m| {
                let w = 1.0 - m * (global_max / m.max(1e-9)).min(1.0);
                w.clamp(0.0, 1.0)
            })
            .collect();
        // Logit scaling as in the paper, clipped to [0, 1].
        for w in &mut weights {
            let x = (*w).clamp(1e-5, 1.0 - 1e-5);
            *w = (0.5 + 0.125 * (x / (1.0 - x)).ln()).clamp(0.0, 1.0);
        }
        let wsum: f32 = weights.iter().sum();
        let mut out = vec![0.0; dim];
        if wsum > 0.0 {
            for (w, u) in weights.iter().zip(updates) {
                ops::axpy(w / wsum, u, &mut out);
            }
        }
        Ok(out)
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = ops::norm(a);
    let nb = ops::norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    ops::dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clipping_neutralises_a_boosted_update() {
        let mut rng = StdRng::seed_from_u64(1);
        let honest = vec![vec![0.1, 0.0], vec![0.0, 0.1], vec![0.1, 0.1]];
        let mut all = honest.clone();
        all.push(vec![50.0, -50.0]); // boosted poison
        let agg = clip_and_noise(&all, 0.2, 0.0, &mut rng).unwrap();
        assert!(ops::norm(&agg) < 0.3, "boosted update survived clipping: {agg:?}");
    }

    #[test]
    fn noise_perturbs_the_aggregate() {
        let mut rng = StdRng::seed_from_u64(2);
        let ups = vec![vec![0.0; 8]; 3];
        let agg = clip_and_noise(&ups, 1.0, 0.1, &mut rng).unwrap();
        assert!(agg.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 3.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn foolsgold_downweights_a_sybil_cluster() {
        let mut fg = FoolsGold::new();
        // Three sybils pushing an identical direction, two honest clients
        // pushing diverse directions, across a few rounds.
        let sybil = vec![1.0_f32, 1.0, 0.0, 0.0];
        for round in 0..4 {
            let honest1 = vec![0.1 * (round as f32 + 1.0), -0.05, 0.2, 0.05];
            let honest2 = vec![-0.1, 0.2, -0.02 * (round as f32 + 1.0), 0.1];
            let updates = vec![sybil.clone(), sybil.clone(), sybil.clone(), honest1, honest2];
            let agg = fg.aggregate(&[0, 1, 2, 3, 4], &updates).unwrap();
            if round == 3 {
                // The sybil direction (coordinates 0 & 1 strongly positive,
                // magnitude ~1) must be suppressed.
                assert!(agg[0] < 0.5, "sybil direction survived: {agg:?}");
            }
        }
        assert_eq!(fg.tracked_clients(), 5);
    }

    #[test]
    fn foolsgold_passes_a_single_attacker_through() {
        // The known weakness: a single poisoned client has no similar
        // peer, so its weight stays high.
        let mut fg = FoolsGold::new();
        let updates = vec![
            vec![5.0, 5.0],   // lone attacker
            vec![0.1, -0.2],  // honest
            vec![-0.15, 0.1], // honest
        ];
        let agg = fg.aggregate(&[0, 1, 2], &updates).unwrap();
        assert!(agg[0] > 0.5, "single attacker was (wrongly for FG) suppressed: {agg:?}");
    }

    #[test]
    fn foolsgold_rejects_mismatched_ids() {
        let mut fg = FoolsGold::new();
        assert!(fg.aggregate(&[0], &[vec![1.0], vec![2.0]]).is_err());
    }
}
