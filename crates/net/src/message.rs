//! Protocol messages.
//!
//! Every payload that represents a model crosses actor boundaries as
//! [`bytes::Bytes`] in the [`baffle_nn::wire`] `f32` format, so the
//! protocol layer never touches in-memory model structs — exactly how a
//! networked deployment would behave.

use baffle_attack::voting::Vote;
use baffle_fl::history_sync::ModelId;
use bytes::Bytes;

/// Identifies a protocol participant. The server is [`NodeId::SERVER`];
/// clients are numbered from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The coordinating server.
    pub const SERVER: NodeId = NodeId(u32::MAX);

    /// Whether this id denotes the server.
    pub fn is_server(self) -> bool {
        self == Self::SERVER
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_server() {
            write!(f, "server")
        } else {
            write!(f, "client-{}", self.0)
        }
    }
}

/// Why a client could not act on a request (carried by
/// [`Message::Abstain`]).
///
/// The reason pins the abstention to one server phase: train-phase
/// reasons settle the sender's slot in the update collection, vote-phase
/// reasons settle it in the vote collection. Without that, an abstention
/// lingering in the server's queue past a phase boundary could be
/// mis-attributed to the following phase of the same round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbstainReason {
    /// The `TrainRequest`'s global model failed to decode.
    UndecodableGlobal,
    /// The client has no local data to train on.
    EmptyShard,
    /// The `ValidateRequest`'s candidate model failed to decode.
    UndecodableCandidate,
    /// The client's cached history is too short to run Algorithm 2.
    HistoryTooShort,
    /// The client has no validation data — it cannot judge.
    NoValidationData,
    /// The misclassification analysis failed (degenerate LOF geometry).
    DegenerateAnalysis,
}

impl AbstainReason {
    /// Whether this abstention answers a `TrainRequest` (otherwise it
    /// answers a `ValidateRequest`).
    pub fn is_train_phase(self) -> bool {
        matches!(self, AbstainReason::UndecodableGlobal | AbstainReason::EmptyShard)
    }

    /// Whether this abstention answers a `ValidateRequest`.
    pub fn is_vote_phase(self) -> bool {
        !self.is_train_phase()
    }
}

impl std::fmt::Display for AbstainReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AbstainReason::UndecodableGlobal => "undecodable global model",
            AbstainReason::EmptyShard => "empty local shard",
            AbstainReason::UndecodableCandidate => "undecodable candidate model",
            AbstainReason::HistoryTooShort => "history too short",
            AbstainReason::NoValidationData => "no validation data",
            AbstainReason::DegenerateAnalysis => "degenerate analysis",
        };
        f.write_str(s)
    }
}

/// One accepted global model shipped as part of a history sync.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Monotone id assigned by the server at acceptance time.
    pub id: ModelId,
    /// Wire-encoded parameters.
    pub params: Bytes,
}

/// All messages of the BaFFLe protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Server → contributor: train on this global model for round
    /// `round` and reply with an [`Message::UpdateSubmission`].
    TrainRequest {
        /// Protocol round number.
        round: u64,
        /// Wire-encoded global model parameters.
        global: Bytes,
    },
    /// Contributor → server: the local update `U = L − G`.
    UpdateSubmission {
        /// Round this update belongs to.
        round: u64,
        /// Submitting client.
        from: NodeId,
        /// Wire-encoded update vector.
        update: Bytes,
    },
    /// Server → validator: validate this candidate model. Ships only the
    /// history entries the client has not yet cached (§VI-D incremental
    /// shipping).
    ValidateRequest {
        /// Round being validated.
        round: u64,
        /// Wire-encoded candidate model.
        candidate: Bytes,
        /// History entries missing from the client's cache, oldest
        /// first.
        history_delta: Vec<HistoryEntry>,
    },
    /// Validator → server: the verdict (`d_i` of Algorithm 1).
    VoteSubmission {
        /// Round being voted on.
        round: u64,
        /// Voting client.
        from: NodeId,
        /// The vote.
        vote: Vote,
    },
    /// Client → server: the sender cannot act on this round's request
    /// (train or validate, per [`AbstainReason::is_train_phase`]). An
    /// abstention settles the sender's slot in the server's phase
    /// ledger so the round does not wait out the phase timeout on it; in
    /// the vote phase it is the paper's footnote-1 implicit accept made
    /// explicit.
    Abstain {
        /// Round the abstention belongs to.
        round: u64,
        /// Abstaining client.
        from: NodeId,
        /// Why the client cannot act.
        reason: AbstainReason,
    },
    /// Server → everyone involved in the round: the decision.
    RoundResult {
        /// The round.
        round: u64,
        /// Whether the update was integrated.
        accepted: bool,
    },
    /// Server → client: the protocol is over; the actor should exit.
    Shutdown,
}

impl Message {
    /// Short message-type label for logs and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::TrainRequest { .. } => "train-request",
            Message::UpdateSubmission { .. } => "update-submission",
            Message::ValidateRequest { .. } => "validate-request",
            Message::VoteSubmission { .. } => "vote-submission",
            Message::Abstain { .. } => "abstain",
            Message::RoundResult { .. } => "round-result",
            Message::Shutdown => "shutdown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_server() {
        assert_eq!(NodeId(3).to_string(), "client-3");
        assert_eq!(NodeId::SERVER.to_string(), "server");
        assert!(NodeId::SERVER.is_server());
        assert!(!NodeId(0).is_server());
    }

    #[test]
    fn message_kinds_are_distinct() {
        let msgs = [
            Message::TrainRequest { round: 0, global: Bytes::new() },
            Message::UpdateSubmission { round: 0, from: NodeId(0), update: Bytes::new() },
            Message::ValidateRequest { round: 0, candidate: Bytes::new(), history_delta: vec![] },
            Message::VoteSubmission { round: 0, from: NodeId(0), vote: Vote::Accept },
            Message::Abstain { round: 0, from: NodeId(0), reason: AbstainReason::EmptyShard },
            Message::RoundResult { round: 0, accepted: true },
            Message::Shutdown,
        ];
        let mut kinds: Vec<&str> = msgs.iter().map(|m| m.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), msgs.len());
    }

    #[test]
    fn abstain_reasons_partition_into_exactly_one_phase() {
        let reasons = [
            AbstainReason::UndecodableGlobal,
            AbstainReason::EmptyShard,
            AbstainReason::UndecodableCandidate,
            AbstainReason::HistoryTooShort,
            AbstainReason::NoValidationData,
            AbstainReason::DegenerateAnalysis,
        ];
        for r in reasons {
            assert_ne!(r.is_train_phase(), r.is_vote_phase(), "{r} must belong to one phase");
            assert!(!r.to_string().is_empty());
        }
        assert_eq!(reasons.iter().filter(|r| r.is_train_phase()).count(), 2);
    }
}
