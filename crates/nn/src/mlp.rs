//! Multi-layer perceptron classifier.

use crate::{softmax_cross_entropy, softmax_cross_entropy_into, Activation, Dense, Model, Sgd};
use baffle_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Architecture description for an [`Mlp`]: input dimension, hidden layer
/// widths and number of classes.
///
/// # Example
///
/// ```
/// use baffle_nn::MlpSpec;
/// let spec = MlpSpec::new(64, &[128, 64], 10);
/// assert_eq!(spec.num_params(), 64 * 128 + 128 + 128 * 64 + 64 + 64 * 10 + 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpSpec {
    input_dim: usize,
    hidden: Vec<usize>,
    num_classes: usize,
    activation: Activation,
}

impl MlpSpec {
    /// Creates a spec with ReLU hidden activations.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim == 0`, `num_classes < 2`, or any hidden width
    /// is zero.
    pub fn new(input_dim: usize, hidden: &[usize], num_classes: usize) -> Self {
        assert!(input_dim > 0, "MlpSpec: input_dim must be positive");
        assert!(num_classes >= 2, "MlpSpec: need at least two classes");
        assert!(hidden.iter().all(|&h| h > 0), "MlpSpec: hidden widths must be positive");
        Self { input_dim, hidden: hidden.to_vec(), num_classes, activation: Activation::Relu }
    }

    /// Replaces the hidden-layer activation.
    pub fn with_activation(mut self, activation: Activation) -> Self {
        self.activation = activation;
        self
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden layer widths.
    pub fn hidden(&self) -> &[usize] {
        &self.hidden
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total number of scalar parameters of an MLP with this architecture.
    pub fn num_params(&self) -> usize {
        let mut dims = vec![self.input_dim];
        dims.extend_from_slice(&self.hidden);
        dims.push(self.num_classes);
        dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }
}

/// Persistent scratch for the allocation-free training hot path: the
/// per-layer activation chain, the ping-pong gradient pair and the
/// per-minibatch row/label staging buffers. All buffers are reused
/// across batches; contents are fully rewritten each use.
#[derive(Debug, Clone, Default)]
pub(crate) struct TrainScratch {
    /// `acts[i]` = activation of layer `i` (`acts.last()` = logits).
    pub acts: Vec<Matrix>,
    /// Gradient ping-pong pair for the backward chain.
    pub grad_a: Matrix,
    pub grad_b: Matrix,
    /// Mini-batch row staging for `train_epoch`.
    pub xb: Matrix,
    /// Mini-batch label staging for `train_epoch`.
    pub yb: Vec<usize>,
    /// Shuffled index order for `train_epoch`.
    pub order: Vec<usize>,
}

/// A multi-layer perceptron trained with mini-batch SGD on softmax
/// cross-entropy — the model substrate standing in for the paper's
/// ResNet18 (see `DESIGN.md` §2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    spec: MlpSpec,
    layers: Vec<Dense>,
    #[serde(skip)]
    scratch: TrainScratch,
}

impl Mlp {
    /// Creates an MLP with He-initialised weights.
    pub fn new<R: Rng + ?Sized>(spec: &MlpSpec, rng: &mut R) -> Self {
        let mut dims = vec![spec.input_dim];
        dims.extend_from_slice(&spec.hidden);
        dims.push(spec.num_classes);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for (i, w) in dims.windows(2).enumerate() {
            let act = if i + 2 == dims.len() { Activation::Identity } else { spec.activation };
            layers.push(Dense::new(w[0], w[1], act, rng));
        }
        Self { spec: spec.clone(), layers, scratch: TrainScratch::default() }
    }

    /// The architecture of this model.
    pub fn spec(&self) -> &MlpSpec {
        &self.spec
    }

    /// Class logits for a batch (`batch × num_classes`).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = self.layers[0].forward(x);
        for layer in &self.layers[1..] {
            h = layer.forward(&h);
        }
        h
    }

    /// Runs one SGD step on a single mini-batch, returning the batch loss.
    ///
    /// Every intermediate (activation chain, loss gradient, backward
    /// ping-pong pair, per-layer caches and gradients) lives in a
    /// persistent buffer, so at steady state — batch shape unchanged
    /// since the previous call — the step performs no allocation. The
    /// arithmetic is bit-identical to the retained allocating reference
    /// [`Mlp::train_batch_ref`].
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != y.len()` or shapes mismatch the architecture.
    pub fn train_batch(&mut self, x: &Matrix, y: &[usize], opt: &mut Sgd) -> f32 {
        assert_eq!(x.rows(), y.len(), "Mlp::train_batch: {} rows vs {} labels", x.rows(), y.len());
        let nl = self.layers.len();
        self.scratch.acts.resize_with(nl, Matrix::default);
        // Forward with caching: layer i reads acts[i−1] (or x) and writes
        // acts[i]; split_at_mut keeps the read and write rows disjoint.
        for i in 0..nl {
            let (prev, cur) = self.scratch.acts.split_at_mut(i);
            let input = if i == 0 { x } else { &prev[i - 1] };
            self.layers[i].forward_train_into(input, &mut cur[0]);
        }
        let loss = softmax_cross_entropy_into(
            self.scratch.acts.last().expect("Mlp has at least one layer"),
            y,
            &mut self.scratch.grad_a,
        );
        // Backward: ping-pong the gradient between two persistent buffers.
        let mut ga = std::mem::take(&mut self.scratch.grad_a);
        let mut gb = std::mem::take(&mut self.scratch.grad_b);
        for layer in self.layers.iter_mut().rev() {
            layer.backward_into(&ga, &mut gb);
            std::mem::swap(&mut ga, &mut gb);
        }
        self.scratch.grad_a = ga;
        self.scratch.grad_b = gb;
        // Update.
        opt.begin_step(self.num_params());
        for layer in &mut self.layers {
            layer.apply_grads_chunked(opt);
        }
        loss
    }

    /// The retained allocating implementation of [`Mlp::train_batch`] —
    /// fresh buffers every call, the pre-workspace hot path. Kept as the
    /// bit-identity reference for the workspace path (see the property
    /// tests); both walk the same layer order with the same arithmetic.
    pub fn train_batch_ref(&mut self, x: &Matrix, y: &[usize], opt: &mut Sgd) -> f32 {
        assert_eq!(x.rows(), y.len(), "Mlp::train_batch: {} rows vs {} labels", x.rows(), y.len());
        // Forward with caching.
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward_train(&h);
        }
        let (loss, mut grad) = softmax_cross_entropy(&h, y);
        // Backward.
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        // Update.
        opt.begin_step(self.num_params());
        for layer in &mut self.layers {
            layer.apply_grads(|p, g| opt.update(p, g));
        }
        loss
    }

    /// Runs one epoch of mini-batch SGD over `(x, y)` in a shuffled order,
    /// returning the mean batch loss.
    ///
    /// The shuffled order, mini-batch rows and labels are staged in
    /// persistent scratch buffers, so a steady-state epoch allocates
    /// nothing. The RNG consumption and arithmetic are identical to the
    /// retained [`Mlp::train_epoch_ref`].
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != y.len()` or `batch_size == 0`.
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        x: &Matrix,
        y: &[usize],
        batch_size: usize,
        opt: &mut Sgd,
        rng: &mut R,
    ) -> f32 {
        assert!(batch_size > 0, "Mlp::train_epoch: batch_size must be positive");
        assert_eq!(x.rows(), y.len(), "Mlp::train_epoch: {} rows vs {} labels", x.rows(), y.len());
        if y.is_empty() {
            return 0.0;
        }
        // Take the staging buffers out of `self` so `train_batch` can
        // borrow the model mutably; restored below.
        let mut order = std::mem::take(&mut self.scratch.order);
        let mut xb = std::mem::take(&mut self.scratch.xb);
        let mut yb = std::mem::take(&mut self.scratch.yb);
        order.clear();
        order.extend(0..y.len());
        order.shuffle(rng);
        let mut total = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(batch_size) {
            x.select_rows_into(chunk, &mut xb);
            yb.clear();
            yb.extend(chunk.iter().map(|&i| y[i]));
            total += self.train_batch(&xb, &yb, opt);
            batches += 1;
        }
        self.scratch.order = order;
        self.scratch.xb = xb;
        self.scratch.yb = yb;
        total / batches as f32
    }

    /// The retained allocating implementation of [`Mlp::train_epoch`],
    /// driving [`Mlp::train_batch_ref`]. The bit-identity reference for
    /// the workspace path; consumes the RNG identically.
    pub fn train_epoch_ref<R: Rng + ?Sized>(
        &mut self,
        x: &Matrix,
        y: &[usize],
        batch_size: usize,
        opt: &mut Sgd,
        rng: &mut R,
    ) -> f32 {
        assert!(batch_size > 0, "Mlp::train_epoch: batch_size must be positive");
        assert_eq!(x.rows(), y.len(), "Mlp::train_epoch: {} rows vs {} labels", x.rows(), y.len());
        if y.is_empty() {
            return 0.0;
        }
        let mut order: Vec<usize> = (0..y.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(batch_size) {
            let xb = x.select_rows(chunk);
            let yb: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
            total += self.train_batch_ref(&xb, &yb, opt);
            batches += 1;
        }
        total / batches as f32
    }

    /// Mean softmax cross-entropy loss over a dataset (no training).
    pub fn loss(&self, x: &Matrix, y: &[usize]) -> f32 {
        let logits = self.forward(x);
        softmax_cross_entropy(&logits, y).0
    }

    /// Fraction of correctly classified rows.
    pub fn accuracy(&self, x: &Matrix, y: &[usize]) -> f32 {
        if y.is_empty() {
            return 0.0;
        }
        let preds = self.predict_batch(x);
        let correct = preds.iter().zip(y).filter(|(p, t)| p == t).count();
        correct as f32 / y.len() as f32
    }

    /// Drops all cached activations/gradients and the training scratch
    /// buffers (e.g. before serialising).
    pub fn clear_cache(&mut self) {
        for layer in &mut self.layers {
            layer.clear_cache();
        }
        self.scratch = TrainScratch::default();
    }
}

impl Model for Mlp {
    fn num_params(&self) -> usize {
        self.spec.num_params()
    }

    fn params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            layer.write_params(&mut out);
        }
        out
    }

    fn set_params(&mut self, p: &[f32]) {
        assert_eq!(
            p.len(),
            self.num_params(),
            "Mlp::set_params: expected {} params, got {}",
            self.num_params(),
            p.len()
        );
        let mut rest = p;
        for layer in &mut self.layers {
            rest = layer.read_params(rest);
        }
    }

    fn num_classes(&self) -> usize {
        self.spec.num_classes
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        self.forward(x).argmax_rows()
    }

    fn predict_rows(&self, x: &Matrix, r0: usize, r1: usize) -> Vec<usize> {
        // Feed the first layer a borrowed row view — no copy of the rows.
        let mut h = self.layers[0].forward_view(x.view_rows(r0, r1));
        for layer in &self.layers[1..] {
            h = layer.forward(&h);
        }
        h.argmax_rows()
    }

    /// Fused multi-model prediction: the first layer runs as one wide
    /// [`Dense::forward_multi_shared`] GEMM over the shared input rows
    /// and every later layer as one block-diagonal
    /// [`Dense::forward_multi`] call. On the default bit-exact kernels
    /// the predictions are bit-identical to per-model
    /// [`Model::predict_rows`]; under `BAFFLE_FAST_MATH` the shared
    /// first-layer GEMM is only bound-comparable to the sequential one.
    ///
    /// # Panics
    ///
    /// Panics if the models do not all share one [`MlpSpec`].
    fn predict_multi(models: &[&Self], x: &Matrix, r0: usize, r1: usize) -> Vec<Vec<usize>> {
        if models.is_empty() {
            return Vec::new();
        }
        if models.len() == 1 {
            return vec![models[0].predict_rows(x, r0, r1)];
        }
        for m in models {
            assert_eq!(m.spec, models[0].spec, "Mlp::predict_multi: mismatched architectures");
        }
        let first: Vec<&Dense> = models.iter().map(|m| &m.layers[0]).collect();
        let mut hs = Dense::forward_multi_shared(&first, x.view_rows(r0, r1));
        for li in 1..models[0].layers.len() {
            let layers: Vec<&Dense> = models.iter().map(|m| &m.layers[li]).collect();
            let inputs: Vec<&Matrix> = hs.iter().collect();
            hs = Dense::forward_multi(&layers, &inputs);
        }
        hs.into_iter().map(|h| h.argmax_rows()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_blobs(rng: &mut StdRng, n_per_class: usize) -> (Matrix, Vec<usize>) {
        // Three well-separated Gaussian blobs in 2D.
        let centers = [(-3.0, 0.0), (3.0, 0.0), (0.0, 4.0)];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per_class {
                rows.push(vec![
                    cx + 0.5 * baffle_tensor::rng::standard_normal(rng),
                    cy + 0.5 * baffle_tensor::rng::standard_normal(rng),
                ]);
                labels.push(c);
            }
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), labels)
    }

    #[test]
    fn spec_param_count_matches_model() {
        let spec = MlpSpec::new(5, &[7, 3], 4);
        let mut rng = StdRng::seed_from_u64(0);
        let m = Mlp::new(&spec, &mut rng);
        assert_eq!(m.params().len(), spec.num_params());
    }

    #[test]
    fn params_roundtrip_exact() {
        let spec = MlpSpec::new(4, &[6], 3);
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mlp::new(&spec, &mut rng);
        let mut b = Mlp::new(&spec, &mut rng);
        b.set_params(&a.params());
        assert_eq!(a.params(), b.params());
        // And they now predict identically.
        let x = Matrix::from_fn(5, 4, |r, c| (r as f32 - c as f32) * 0.3);
        assert_eq!(a.predict_batch(&x), b.predict_batch(&x));
    }

    #[test]
    fn learns_separable_blobs() {
        let mut rng = StdRng::seed_from_u64(2);
        let (x, y) = toy_blobs(&mut rng, 50);
        let mut model = Mlp::new(&MlpSpec::new(2, &[16], 3), &mut rng);
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        for _ in 0..30 {
            model.train_epoch(&x, &y, 16, &mut opt, &mut rng);
        }
        assert!(model.accuracy(&x, &y) > 0.95, "accuracy = {}", model.accuracy(&x, &y));
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(3);
        let (x, y) = toy_blobs(&mut rng, 30);
        let mut model = Mlp::new(&MlpSpec::new(2, &[8], 3), &mut rng);
        let mut opt = Sgd::new(0.05);
        let before = model.loss(&x, &y);
        for _ in 0..10 {
            model.train_epoch(&x, &y, 8, &mut opt, &mut rng);
        }
        let after = model.loss(&x, &y);
        assert!(after < before, "loss went {before} -> {after}");
    }

    #[test]
    fn empty_epoch_is_noop() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = Mlp::new(&MlpSpec::new(2, &[4], 2), &mut rng);
        let before = model.params();
        let loss = model.train_epoch(&Matrix::zeros(0, 2), &[], 8, &mut Sgd::new(0.1), &mut rng);
        assert_eq!(loss, 0.0);
        assert_eq!(model.params(), before);
    }

    #[test]
    fn accuracy_on_empty_set_is_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = Mlp::new(&MlpSpec::new(2, &[], 2), &mut rng);
        assert_eq!(model.accuracy(&Matrix::zeros(0, 2), &[]), 0.0);
    }

    #[test]
    fn no_hidden_layers_is_linear_classifier() {
        let mut rng = StdRng::seed_from_u64(6);
        let spec = MlpSpec::new(3, &[], 2);
        let model = Mlp::new(&spec, &mut rng);
        assert_eq!(model.num_params(), 3 * 2 + 2);
        let x = Matrix::zeros(2, 3);
        assert_eq!(model.forward(&x).shape(), (2, 2));
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn set_params_wrong_len_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = Mlp::new(&MlpSpec::new(2, &[], 2), &mut rng);
        model.set_params(&[0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn single_class_spec_panics() {
        let _ = MlpSpec::new(2, &[], 1);
    }

    #[test]
    fn predict_rows_matches_predict_batch_slice() {
        let mut rng = StdRng::seed_from_u64(8);
        let model = Mlp::new(&MlpSpec::new(3, &[5], 4), &mut rng);
        let x = Matrix::from_fn(10, 3, |r, c| ((r * 3 + c) as f32 * 0.41).sin());
        let full = model.predict_batch(&x);
        assert_eq!(model.predict_rows(&x, 3, 8), full[3..8]);
        assert_eq!(model.predict_rows(&x, 0, 10), full);
        assert!(model.predict_rows(&x, 4, 4).is_empty());
    }

    #[test]
    fn predict_multi_matches_sequential_on_default_kernels() {
        use baffle_tensor::gemm;
        if gemm::fast_math_enabled() && gemm::simd_enabled() {
            // The shared first-layer GEMM chains differently wide vs
            // narrow under fast math; argmax can flip on near-ties, so
            // the bitwise comparison only holds on the default tier.
            return;
        }
        let mut rng = StdRng::seed_from_u64(9);
        let spec = MlpSpec::new(4, &[6, 5], 3);
        let models: Vec<Mlp> = (0..5).map(|_| Mlp::new(&spec, &mut rng)).collect();
        let x = Matrix::from_fn(12, 4, |r, c| ((r * 4 + c) as f32 * 0.23).cos());
        let refs: Vec<&Mlp> = models.iter().collect();
        let multi = Mlp::predict_multi(&refs, &x, 2, 11);
        for (i, preds) in multi.iter().enumerate() {
            assert_eq!(preds, &models[i].predict_rows(&x, 2, 11), "model {i}");
        }
    }

    #[test]
    #[should_panic(expected = "mismatched architectures")]
    fn predict_multi_rejects_mismatched_specs() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = Mlp::new(&MlpSpec::new(2, &[3], 2), &mut rng);
        let b = Mlp::new(&MlpSpec::new(2, &[4], 2), &mut rng);
        let x = Matrix::zeros(2, 2);
        let _ = Mlp::predict_multi(&[&a, &b], &x, 0, 2);
    }
}
