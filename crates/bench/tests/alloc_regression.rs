//! Steady-state allocation regression gate for the training hot path.
//!
//! Requires the `alloc-probe` feature (which installs the counting
//! global allocator):
//!
//! ```text
//! cargo test -p baffle-bench --features alloc-probe --test alloc_regression
//! ```
//!
//! The workspace-reuse contract says a warmed-up `Mlp::train_batch` /
//! `train_epoch` touches only caller-retained buffers: layer caches,
//! gradient buffers, the epoch scratch and the optimizer state are all
//! grown once and reused. This test pins that at exactly **zero**
//! allocations per step so any future `clone()`/`collect()` sneaking
//! back into the hot path fails CI instead of quietly costing 20%.
//!
//! Kept to a single `#[test]` so no concurrent test can pollute the
//! process-wide counters.

#![cfg(feature = "alloc-probe")]

use baffle_bench::alloc_probe;
use baffle_nn::{Mlp, MlpSpec, Sgd};
use baffle_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn warm_mlp_training_makes_zero_allocations() {
    // Pin the pool to one thread before anything touches it: fan-out
    // boxes its tasks, which is a (legitimate) per-call allocation this
    // test is not about. The shapes below sit under every parallel
    // threshold anyway; this just makes the guarantee explicit.
    std::env::set_var("BAFFLE_THREADS", "1");

    let mut rng = StdRng::seed_from_u64(11);
    let mut model = Mlp::new(&MlpSpec::new(16, &[24, 24], 4), &mut rng);
    let mut opt = Sgd::new(0.05).with_momentum(0.9).with_weight_decay(1e-4);
    let n = 40;
    let x = Matrix::from_fn(n, 16, |i, j| ((i * 16 + j) as f32 * 0.37).sin());
    let y: Vec<usize> = (0..n).map(|i| i % 4).collect();

    // Warm-up: first batches grow caches, scratch and velocity.
    for _ in 0..3 {
        model.train_batch(&x, &y, &mut opt);
    }
    let (_, per_batch) = alloc_probe::measure(|| {
        for _ in 0..10 {
            model.train_batch(&x, &y, &mut opt);
        }
    });
    assert_eq!(
        per_batch.allocs, 0,
        "warm train_batch allocated {} times ({} bytes) over 10 steps",
        per_batch.allocs, per_batch.bytes
    );

    // The epoch driver (shuffle, minibatch gather, ragged last batch)
    // must also be steady-state clean. Batch 16 over 40 samples leaves
    // a ragged final minibatch of 8, so the reused scratch sees two
    // shapes per epoch.
    model.train_epoch(&x, &y, 16, &mut opt, &mut rng);
    let (_, per_epoch) = alloc_probe::measure(|| {
        for _ in 0..3 {
            model.train_epoch(&x, &y, 16, &mut opt, &mut rng);
        }
    });
    assert_eq!(
        per_epoch.allocs, 0,
        "warm train_epoch allocated {} times ({} bytes) over 3 epochs",
        per_epoch.allocs, per_epoch.bytes
    );
}
