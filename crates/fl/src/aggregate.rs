//! FedAvg aggregation.

use baffle_tensor::ops;

/// FedAvg with a global learning rate (paper §II-B):
///
/// ```text
/// G' = G + (λ / N) · Σᵢ Uᵢ
/// ```
///
/// `updates` are the client deltas `Uᵢ = Lᵢ − G`. With `λ = N/n` and all
/// `n` selected clients reporting, `G'` is exactly the mean of the local
/// models.
///
/// # Panics
///
/// Panics if `updates` is empty, the lengths are inconsistent,
/// `num_clients == 0`, or `lambda` is not finite.
///
/// # Example
///
/// ```
/// use baffle_fl::fedavg;
/// let g = vec![1.0, 1.0];
/// let ups = vec![vec![2.0, 0.0], vec![0.0, 2.0]];
/// // λ/N = 1/2: move halfway along the summed update.
/// assert_eq!(fedavg(&g, &ups, 1.0, 2), vec![2.0, 2.0]);
/// ```
pub fn fedavg(global: &[f32], updates: &[Vec<f32>], lambda: f32, num_clients: usize) -> Vec<f32> {
    assert!(!updates.is_empty(), "fedavg: need at least one update");
    assert!(num_clients > 0, "fedavg: num_clients must be positive");
    assert!(lambda.is_finite(), "fedavg: lambda must be finite, got {lambda}");
    let scale = lambda / num_clients as f32;
    let mut out = global.to_vec();
    for u in updates {
        ops::axpy(scale, u, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_replacement_with_lambda_n_over_n() {
        // N = 4, n = 2 selected, λ = N/n = 2: G' = mean of local models.
        let g = vec![0.0, 10.0];
        let l1 = vec![2.0, 12.0];
        let l2 = vec![4.0, 14.0];
        let ups = vec![ops_sub(&l1, &g), ops_sub(&l2, &g)];
        let out = fedavg(&g, &ups, 2.0, 4);
        assert_eq!(out, vec![3.0, 13.0]);
    }

    fn ops_sub(a: &[f32], b: &[f32]) -> Vec<f32> {
        baffle_tensor::ops::sub(a, b)
    }

    #[test]
    fn zero_updates_leave_global_unchanged() {
        let g = vec![1.0, -2.0, 3.0];
        let ups = vec![vec![0.0; 3]; 5];
        assert_eq!(fedavg(&g, &ups, 7.0, 100), g);
    }

    #[test]
    fn single_boosted_update_replaces_model() {
        // Model-replacement algebra: attacker submits γ·(X − G) with
        // γ = N/λ (single reporting client), yielding G' = X.
        let g = vec![1.0, 1.0];
        let x = vec![5.0, -3.0];
        let n_total = 100;
        let lambda = 10.0;
        let gamma = n_total as f32 / lambda;
        let poisoned: Vec<f32> = g.iter().zip(&x).map(|(&gi, &xi)| gamma * (xi - gi)).collect();
        let out = fedavg(&g, &[poisoned], lambda, n_total);
        for (o, e) in out.iter().zip(&x) {
            assert!((o - e).abs() < 1e-4, "{o} vs {e}");
        }
    }

    #[test]
    fn aggregation_is_linear_in_updates() {
        let g = vec![0.0; 3];
        let u1 = vec![1.0, 2.0, 3.0];
        let u2 = vec![-1.0, 0.5, 2.0];
        let joint = fedavg(&g, &[u1.clone(), u2.clone()], 3.0, 6);
        let seq = {
            let mid = fedavg(&g, &[u1], 3.0, 6);
            fedavg(&mid, &[u2], 3.0, 6)
        };
        for (a, b) in joint.iter().zip(&seq) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "at least one update")]
    fn empty_updates_panics() {
        let _ = fedavg(&[0.0], &[], 1.0, 1);
    }
}
