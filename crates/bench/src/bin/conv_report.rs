//! Emits a machine-readable conv perf summary (`BENCH_conv.json` on CI):
//! median ns/op for the retained naive scalar loops and the packed
//! im2col/GEMM path, forward and full train pass, at the default CNN's
//! layer shapes. Both paths are bit-identical, so the speedup columns
//! are pure perf signal.
//!
//! Uses plain `std::time` rather than Criterion so it runs as a normal
//! release binary: `cargo run --release -p baffle-bench --bin conv_report`.

use baffle_nn::conv::Conv1d;
use baffle_nn::Activation;
use baffle_tensor::{pool, rng as trng};
use std::hint::black_box;
use std::time::Instant;

/// (in_channels, out_channels, kernel, length, batch): the two conv
/// layers of the default CNN over a training batch, plus a
/// validation-set sized batch.
const SHAPES: &[(usize, usize, usize, usize, usize)] =
    &[(1, 6, 3, 24, 64), (6, 6, 3, 24, 64), (6, 6, 3, 24, 512)];

/// Median wall-clock of `reps` single runs of `f`, in nanoseconds.
fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Picks a repetition count that keeps each variant near ~0.3 s total.
fn reps_for<F: FnMut()>(f: &mut F) -> usize {
    let t = Instant::now();
    f();
    let once = t.elapsed().as_nanos().max(1) as usize;
    (300_000_000 / once).clamp(5, 200)
}

fn main() {
    println!("{{");
    println!("  \"bench\": \"conv\",");
    println!("  \"threads\": {},", pool::threads());
    println!("  \"simd\": {},", baffle_tensor::gemm::simd_enabled());
    println!("  \"unit\": \"ns_per_op_median\",");
    println!("  \"shapes\": [");
    for (idx, &(ic, oc, k, len, batch)) in SHAPES.iter().enumerate() {
        let mut rng = rand_rng(idx);
        let conv = Conv1d::new(ic, oc, k, len, Activation::Relu, &mut rng);
        let x = trng::uniform_matrix(&mut rng, batch, ic * len, -1.0, 1.0);
        let g = trng::uniform_matrix(&mut rng, batch, oc * len, -1.0, 1.0);

        let mut naive_fwd = || {
            black_box(conv.naive_forward(black_box(&x)));
        };
        let mut packed_fwd = || {
            black_box(conv.forward(black_box(&x)));
        };
        let naive_fwd_ns = median_ns(reps_for(&mut naive_fwd), naive_fwd);
        let packed_fwd_ns = median_ns(reps_for(&mut packed_fwd), packed_fwd);

        let mut slow = conv.clone();
        slow.force_naive(true);
        let mut naive_train = || {
            let _ = slow.forward_train(black_box(&x));
            black_box(slow.backward(black_box(&g)));
            slow.apply_grads(|_, _| {});
        };
        let naive_train_ns = median_ns(reps_for(&mut naive_train), naive_train);
        let mut fast = conv.clone();
        let mut packed_train = || {
            let _ = fast.forward_train(black_box(&x));
            black_box(fast.backward(black_box(&g)));
            fast.apply_grads(|_, _| {});
        };
        let packed_train_ns = median_ns(reps_for(&mut packed_train), packed_train);

        let comma = if idx + 1 < SHAPES.len() { "," } else { "" };
        println!(
            "    {{\"shape\": \"{ic}x{oc}x{k}x{len}b{batch}\", \
             \"naive_forward_ns\": {naive_fwd_ns:.0}, \"im2col_forward_ns\": {packed_fwd_ns:.0}, \
             \"naive_train_ns\": {naive_train_ns:.0}, \"im2col_train_ns\": {packed_train_ns:.0}, \
             \"speedup_forward\": {:.2}, \"speedup_train\": {:.2}}}{comma}",
            naive_fwd_ns / packed_fwd_ns,
            naive_train_ns / packed_train_ns,
        );
    }
    println!("  ]");
    println!("}}");
}

fn rand_rng(seed: usize) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(42 + seed as u64)
}
