//! Malicious validator behaviours.
//!
//! The feedback loop gives voting power to clients, so Byzantine clients
//! may lie in either direction (paper §IV-B):
//!
//! - **stealth accept**: vote "clean" on models their coordinator
//!   poisoned, to push a backdoored model past the quorum;
//! - **denial of service**: vote "poisoned" on every model, to stall
//!   training by having genuine updates rejected.

use serde::{Deserialize, Serialize};

/// A validator's vote about the current global model.
///
/// Matches the paper's encoding: `d_i = 1` means "poisoned" (reject),
/// `d_i = 0` means "clean" (accept).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vote {
    /// `d_i = 0`: the model looks clean.
    Accept,
    /// `d_i = 1`: the model looks poisoned.
    Reject,
}

impl Vote {
    /// The paper's bit encoding (`1` = reject).
    pub fn as_bit(self) -> u8 {
        match self {
            Vote::Accept => 0,
            Vote::Reject => 1,
        }
    }
}

/// How a (possibly malicious) validating client produces its vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum VoterBehavior {
    /// Runs the real validation function on local data.
    #[default]
    Honest,
    /// Colludes with the attacker: always votes "clean".
    StealthAccept,
    /// Mounts a denial-of-service: always votes "poisoned".
    DenialOfService,
}

impl VoterBehavior {
    /// Produces the final vote given what the honest validation function
    /// would have said.
    pub fn cast(self, honest_vote: Vote) -> Vote {
        match self {
            VoterBehavior::Honest => honest_vote,
            VoterBehavior::StealthAccept => Vote::Accept,
            VoterBehavior::DenialOfService => Vote::Reject,
        }
    }

    /// Whether this behaviour needs the honest validation to run at all
    /// (malicious voters can skip the computation).
    pub fn needs_validation(self) -> bool {
        matches!(self, VoterBehavior::Honest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_passes_through() {
        assert_eq!(VoterBehavior::Honest.cast(Vote::Accept), Vote::Accept);
        assert_eq!(VoterBehavior::Honest.cast(Vote::Reject), Vote::Reject);
    }

    #[test]
    fn stealth_always_accepts() {
        assert_eq!(VoterBehavior::StealthAccept.cast(Vote::Reject), Vote::Accept);
    }

    #[test]
    fn dos_always_rejects() {
        assert_eq!(VoterBehavior::DenialOfService.cast(Vote::Accept), Vote::Reject);
    }

    #[test]
    fn bit_encoding_matches_paper() {
        assert_eq!(Vote::Accept.as_bit(), 0);
        assert_eq!(Vote::Reject.as_bit(), 1);
    }

    #[test]
    fn only_honest_voters_need_validation() {
        assert!(VoterBehavior::Honest.needs_validation());
        assert!(!VoterBehavior::StealthAccept.needs_validation());
        assert!(!VoterBehavior::DenialOfService.needs_validation());
    }
}
