//! Process-wide scoped worker pool for data-parallel kernels.
//!
//! Every parallel hot path in the workspace — row-banded GEMM
//! ([`crate::gemm`]), chunked confusion-matrix evaluation, client-local
//! training, the feedback vote fan-out — shares this one pool instead of
//! spawning ad-hoc scoped threads per call. Workers are started lazily on
//! first use and live for the rest of the process, so a simulation that
//! issues thousands of small fan-outs per round pays thread start-up cost
//! exactly once.
//!
//! # Sizing
//!
//! The pool holds [`threads`] workers: the `BAFFLE_THREADS` environment
//! variable if set to a positive integer, otherwise
//! [`std::thread::available_parallelism`]. `BAFFLE_THREADS=1` disables
//! parallelism entirely ([`join_all`] then runs every task inline on the
//! caller), which is the supported way to pin benchmarks or bisect a
//! suspected concurrency issue. The variable is read once, at first use.
//!
//! # Determinism
//!
//! The pool provides *structured* parallelism only: [`join_all`] and
//! [`parallel_map`] return after every submitted task has completed, and
//! [`parallel_map`] writes each result into the slot of its input index.
//! Callers that keep per-task state independent (per-client RNG streams,
//! disjoint output bands) therefore produce bit-identical results at any
//! thread count.
//!
//! # Nesting
//!
//! Tasks that themselves call [`join_all`] / [`parallel_map`] (e.g. a
//! client validation task whose model evaluation wants to chunk) do not
//! deadlock: a call made *from a pool worker* runs its tasks inline
//! serially instead of re-submitting to the queue it is draining.

use std::cell::Cell;
use std::sync::{Condvar, Mutex, OnceLock};

/// A task that has been made `'static` for the queue; only produced
/// inside [`join_all`], which guarantees the borrow it erases outlives
/// the task's execution.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A captured worker panic, replayed on the submitting thread.
type Panic = Box<dyn std::any::Any + Send>;

/// A borrowed task accepted by [`join_all`].
pub type ScopedTask<'scope> = Box<dyn FnOnce() + Send + 'scope>;

struct Pool {
    sender: crossbeam::channel::Sender<Job>,
}

static POOL: OnceLock<Pool> = OnceLock::new();
static THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of pool workers: `BAFFLE_THREADS` if set to a positive
/// integer, otherwise the machine's available parallelism. Read once and
/// cached for the life of the process.
pub fn threads() -> usize {
    *THREADS.get_or_init(|| match std::env::var("BAFFLE_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("BAFFLE_THREADS={v:?} is not a positive integer; using default");
                default_threads()
            }
        },
        Err(_) => default_threads(),
    })
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        for i in 0..threads() {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("baffle-pool-{i}"))
                .spawn(move || {
                    IS_WORKER.with(|w| w.set(true));
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn baffle pool worker");
        }
        Pool { sender: tx }
    })
}

/// Counts outstanding tasks of one [`join_all`] call and holds the first
/// panic (if any) until every task has finished.
struct Latch {
    state: Mutex<(usize, Option<Panic>)>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self { state: Mutex::new((count, None)), done: Condvar::new() }
    }

    fn complete(&self, panic: Option<Panic>) {
        let mut st = self.state.lock().unwrap();
        st.0 -= 1;
        if st.1.is_none() {
            st.1 = panic;
        }
        if st.0 == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut st = self.state.lock().unwrap();
        while st.0 > 0 {
            st = self.done.wait(st).unwrap();
        }
        if let Some(p) = st.1.take() {
            drop(st);
            std::panic::resume_unwind(p);
        }
    }
}

/// Runs every task to completion, on pool workers when that can help:
/// single-task batches, a 1-thread pool, and calls made from inside a
/// pool worker (see module docs on nesting) all run inline serially.
///
/// Tasks may borrow from the caller's stack — the call does not return
/// until every task has finished, even if one of them panics.
///
/// # Panics
///
/// If a task panics, the first such panic is re-raised here after **all**
/// tasks have completed (no partial writes are left in flight).
pub fn join_all(tasks: Vec<ScopedTask<'_>>) {
    if tasks.len() <= 1 || threads() == 1 || IS_WORKER.with(|w| w.get()) {
        for t in tasks {
            t();
        }
        return;
    }
    let latch = Latch::new(tasks.len());
    let pool = pool();
    for task in tasks {
        let latch_ref = &latch;
        let job: ScopedTask<'_> = Box::new(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
            latch_ref.complete(outcome.err());
        });
        // SAFETY: `latch.wait()` below blocks until every submitted job
        // has run to completion, so the borrows captured by `job`
        // (including `latch` itself) strictly outlive all worker-side
        // accesses; erasing the lifetime to queue the job is sound.
        let job = unsafe { std::mem::transmute::<ScopedTask<'_>, Job>(job) };
        pool.sender.send(job).expect("baffle pool workers disconnected");
    }
    latch.wait();
}

/// Applies `f` to every item on the pool, returning results **in input
/// order** (`f` also receives the item's index). The ordering guarantee
/// is what keeps callers deterministic at any thread count.
///
/// # Panics
///
/// Re-raises the first task panic after all tasks have completed.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    {
        let f = &f;
        let tasks: Vec<ScopedTask<'_>> = out
            .iter_mut()
            .zip(items)
            .enumerate()
            .map(|(i, (slot, item))| Box::new(move || *slot = Some(f(i, item))) as ScopedTask<'_>)
            .collect();
        join_all(tasks);
    }
    out.into_iter().map(|r| r.expect("pool task completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn threads_is_positive_and_stable() {
        let t = threads();
        assert!(t >= 1);
        assert_eq!(threads(), t);
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let out = parallel_map((0..100).collect::<Vec<usize>>(), |i, x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_all_runs_borrowed_disjoint_chunks() {
        let mut buf = vec![0u64; 1024];
        let tasks: Vec<ScopedTask<'_>> = buf
            .chunks_mut(100)
            .enumerate()
            .map(|(ci, chunk)| {
                Box::new(move || {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (ci * 100 + j) as u64;
                    }
                }) as ScopedTask<'_>
            })
            .collect();
        join_all(tasks);
        assert!(buf.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let sums = parallel_map((0..16).collect::<Vec<u64>>(), |_, base| {
            let inner = parallel_map((0..50).collect::<Vec<u64>>(), |_, x| x + base);
            inner.iter().sum::<u64>()
        });
        assert_eq!(sums.len(), 16);
        assert_eq!(sums[0], (0..50).sum::<u64>());
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let hit = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let tasks: Vec<ScopedTask<'_>> = (0..8)
                .map(|i| {
                    let hit = &hit;
                    Box::new(move || {
                        hit.fetch_add(1, Ordering::SeqCst);
                        assert!(i != 3, "boom");
                    }) as ScopedTask<'_>
                })
                .collect();
            join_all(tasks);
        }));
        assert!(r.is_err(), "panic must resurface on the caller");
        assert!(hit.load(Ordering::SeqCst) >= 4, "tasks before the panic still ran");
    }

    #[test]
    fn many_concurrent_fanouts_from_external_threads() {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for round in 0..100 {
                        let v = parallel_map((0..9).collect::<Vec<usize>>(), |_, x| x + round);
                        assert_eq!(v[0], round);
                    }
                });
            }
        });
    }
}
