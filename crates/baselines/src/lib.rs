//! Baseline defenses against poisoning in federated learning.
//!
//! The BaFFLe paper positions itself against two families of prior work
//! (§I, §VII):
//!
//! 1. **Byzantine-robust aggregation** from distributed learning — Krum
//!    [Blanchard et al.], coordinate-wise median and trimmed mean [Yin et
//!    al.], and Robust Federated Aggregation (geometric median) [Pillutla
//!    et al.]. The paper argues these "crucially rely on the training
//!    data being uniformly distributed among participants, which is
//!    unrealistic for most FL applications".
//! 2. **Update-inspection defenses** — FoolsGold [Fung et al.],
//!    norm-clipping with noise [Sun et al.]. These examine *individual*
//!    updates and are therefore incompatible with secure aggregation.
//!
//! This crate implements all of them faithfully, at the flat parameter
//! vector level ([`aggregators`]) and as update filters ([`filters`]),
//! plus the naive accuracy-gate detector used as an ablation against
//! BaFFLe's LOF analysis ([`detectors`]). The
//! `baseline_comparison` binary pits each against the model-replacement
//! attack on the same non-IID substrate BaFFLe is evaluated on.
//!
//! # Example
//!
//! ```
//! use baffle_baselines::aggregators::{krum, median};
//!
//! let updates = vec![
//!     vec![0.1, 0.2],
//!     vec![0.11, 0.19],
//!     vec![0.09, 0.21],
//!     vec![0.1, 0.18],
//!     vec![9.0, -9.0], // outlier
//! ];
//! // Krum with one assumed Byzantine client (n ≥ 2f + 3) picks a benign update.
//! let picked = krum(&updates, 1).unwrap();
//! assert!(picked[0] < 1.0);
//! // The coordinate-wise median also suppresses the outlier.
//! let med = median(&updates).unwrap();
//! assert!(med[0] < 1.0);
//! ```

pub mod aggregators;
pub mod detectors;
pub mod filters;
pub mod flguard;
pub mod harness;

/// Error for baseline aggregation over malformed inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// No updates were provided.
    NoUpdates,
    /// Updates have inconsistent lengths.
    LengthMismatch {
        /// Length of the first update.
        expected: usize,
        /// Offending length.
        got: usize,
    },
    /// The parameterisation is infeasible (e.g. Krum needs
    /// `n ≥ 2f + 3`).
    Infeasible {
        /// Explanation of the violated requirement.
        what: &'static str,
    },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::NoUpdates => write!(f, "no updates to aggregate"),
            BaselineError::LengthMismatch { expected, got } => {
                write!(f, "update length mismatch: expected {expected}, got {got}")
            }
            BaselineError::Infeasible { what } => write!(f, "infeasible parameters: {what}"),
        }
    }
}

impl std::error::Error for BaselineError {}

pub(crate) fn check_updates(updates: &[Vec<f32>]) -> Result<usize, BaselineError> {
    let first = updates.first().ok_or(BaselineError::NoUpdates)?;
    for u in updates {
        if u.len() != first.len() {
            return Err(BaselineError::LengthMismatch { expected: first.len(), got: u.len() });
        }
    }
    Ok(first.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_updates_accepts_consistent_inputs() {
        assert_eq!(check_updates(&[vec![1.0, 2.0], vec![3.0, 4.0]]), Ok(2));
    }

    #[test]
    fn check_updates_rejects_empty_and_ragged() {
        assert_eq!(check_updates(&[]), Err(BaselineError::NoUpdates));
        assert!(matches!(
            check_updates(&[vec![1.0], vec![1.0, 2.0]]),
            Err(BaselineError::LengthMismatch { expected: 1, got: 2 })
        ));
    }

    #[test]
    fn errors_display() {
        assert!(BaselineError::NoUpdates.to_string().contains("no updates"));
        assert!(BaselineError::Infeasible { what: "n too small" }
            .to_string()
            .contains("n too small"));
    }
}
