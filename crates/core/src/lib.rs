//! **BaFFLe** — Backdoor detection via Feedback-based Federated Learning.
//!
//! This crate implements the paper's contribution (Andreina, Marson,
//! Möllering, Karame — ICDCS 2021):
//!
//! - [`variation`] — per-class **error-variation vectors** between
//!   consecutive global models (eqs. 2–3);
//! - [`Validator`] — the cross-round misclassification analysis of
//!   **Algorithm 2**: flag the current global model if its
//!   error-variation vector is a Local-Outlier-Factor outlier relative to
//!   the variations of recently accepted models;
//! - [`FeedbackLoop`] — the server side of **Algorithm 1**: collect
//!   validators' votes and reject the round's update when at least `q`
//!   validators flag it, with the quorum-threshold calculus of §IV-B;
//! - [`Simulation`] — the end-to-end experiment driver that combines the
//!   FL substrate, attacks and defense to regenerate every table and
//!   figure of the paper's evaluation (§VI).
//!
//! # Quickstart
//!
//! ```
//! use baffle_core::{Simulation, SimulationConfig};
//!
//! let mut sim = Simulation::new(SimulationConfig::cifar_like_small(42));
//! let report = sim.run();
//! // The scripted injection is detected …
//! assert_eq!(report.false_negatives(), 0);
//! ```

pub mod engine;
pub mod exp;
pub mod feedback;
mod history;
pub mod metrics;
pub mod simulation;
pub mod validate;
pub mod variation;

pub use engine::{ConfusionCache, ValidationEngine};
pub use feedback::{Decision, FeedbackLoop, QuorumRule};
pub use history::ModelHistory;
pub use simulation::{
    AttackKind, ClientDataModel, DatasetKind, DefenseMode, RoundRecord, Simulation,
    SimulationConfig, SimulationReport,
};
pub use validate::{Diagnostics, ValidateError, ValidationConfig, Validator, Verdict};

/// Re-export of the vote type shared with the attack crate's malicious
/// voter models.
pub use baffle_attack::voting::Vote;
