//! Emits a machine-readable validation-cost summary
//! (`BENCH_validation.json` on CI): per-round cost of BaFFLe's
//! wrapped-validation fan-out at history lengths ℓ ∈ {5, 10, 20}, for
//! the sequential cold path, the fused batched cold path, the warm
//! (fully cached) path, and the opt-in fast-math tier — so the claims
//! behind the batched engine (cold sublinear in ℓ, warm independent of
//! ℓ) are tracked per commit, not asserted once.
//!
//! Every emitted metric is measured in-process; if any would serialize
//! as `null` or a non-finite number the binary exits non-zero instead
//! of publishing a hole (CI treats that as a failed perf job). The
//! default-tier batched verdict is also cross-checked against the
//! sequential one and any divergence is a hard failure — the speedup is
//! worthless if it changes the answer.
//!
//! Uses plain `std::time` rather than Criterion so it runs as a normal
//! release binary:
//! `cargo run --release -p baffle-bench --bin validation_report [-- <samples>]`
//! (default 2 000 validation samples; CI smoke uses 500).

use baffle_bench::cifar_fixture;
use baffle_core::{ValidationConfig, ValidationEngine, Validator};
use baffle_fl::history_sync::ModelId;
use baffle_nn::Mlp;
use baffle_tensor::{gemm, pool};
use std::hint::black_box;
use std::process::exit;
use std::time::Instant;

const HISTORY_LENS: &[usize] = &[5, 10, 20];

/// Median wall-clock of `reps` single runs of `f`, in milliseconds.
fn median_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Picks a repetition count that keeps each variant near ~0.3 s total.
fn reps_for<F: FnMut()>(f: &mut F) -> usize {
    let t = Instant::now();
    f();
    let once = t.elapsed().as_nanos().max(1) as usize;
    (300_000_000 / once).clamp(3, 100)
}

/// Refuses to emit a metric that would serialize as `null`/`NaN`/`inf`.
fn measured(name: &str, x: f64) -> f64 {
    if !x.is_finite() {
        eprintln!(
            "validation_report: measured field {name:?} is not finite ({x}); refusing to emit"
        );
        exit(2);
    }
    x
}

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .map(|arg| arg.parse().expect("samples must be a positive integer"))
        .unwrap_or(2_000);

    println!("{{");
    println!("  \"bench\": \"validation\",");
    println!("  \"threads\": {},", pool::threads());
    println!("  \"samples\": {samples},");
    println!("  \"fast_math_env\": {},", gemm::fast_math_enabled());
    println!("  \"simd_enabled\": {},", gemm::simd_enabled());
    println!("  \"unit\": \"ms_per_validation_median\",");
    println!("  \"history_lens\": [");
    for (idx, &len) in HISTORY_LENS.iter().enumerate() {
        let fixture = cifar_fixture(samples, len, 1977 + len as u64);
        let history: &[Mlp] = &fixture.history;
        let candidate = &fixture.model;
        let ids: Vec<ModelId> = (0..history.len() as ModelId).collect();
        let validator = Validator::new(ValidationConfig::new(len));

        // The batched cold path must change only the cost, never the
        // verdict: cross-check before timing anything.
        let sequential = ValidationEngine::new(validator).validate_detailed(
            candidate,
            &ids,
            history,
            &fixture.data,
        );
        let batched = ValidationEngine::new(validator).validate_batched_detailed(
            candidate,
            &ids,
            history,
            &fixture.data,
        );
        if !gemm::fast_math_enabled() && sequential != batched {
            eprintln!(
                "validation_report: batched verdict diverged from sequential at l={len}: \
                 {batched:?} vs {sequential:?}"
            );
            exit(3);
        }

        let mut cold_seq = || {
            let mut engine = ValidationEngine::new(validator);
            black_box(engine.validate_detailed(candidate, &ids, history, &fixture.data)).ok();
        };
        let mut cold_batched = || {
            let mut engine = ValidationEngine::new(validator);
            black_box(engine.validate_batched_detailed(candidate, &ids, history, &fixture.data))
                .ok();
        };
        let mut warm_engine = ValidationEngine::new(validator);
        warm_engine.validate_batched_detailed(candidate, &ids, history, &fixture.data).ok();
        let mut warm = || {
            black_box(warm_engine.validate_batched_detailed(
                candidate,
                &ids,
                history,
                &fixture.data,
            ))
            .ok();
        };

        let cold_seq_ms = median_ms(reps_for(&mut cold_seq), cold_seq);
        let cold_batched_ms = median_ms(reps_for(&mut cold_batched), cold_batched);
        let warm_ms = median_ms(reps_for(&mut warm), warm);

        // The opt-in tier, forced on for the measurement regardless of
        // the environment (and restored after).
        gemm::set_fast_math(Some(true));
        let fast = ValidationEngine::new(validator).validate_batched_detailed(
            candidate,
            &ids,
            history,
            &fixture.data,
        );
        let mut cold_fast = || {
            let mut engine = ValidationEngine::new(validator);
            black_box(engine.validate_batched_detailed(candidate, &ids, history, &fixture.data))
                .ok();
        };
        let cold_fast_ms = median_ms(reps_for(&mut cold_fast), cold_fast);
        gemm::set_fast_math(None);
        let fast_vote_matches = fast.as_ref().ok().map(|d| d.verdict.vote())
            == batched.as_ref().ok().map(|d| d.verdict.vote());

        let comma = if idx + 1 < HISTORY_LENS.len() { "," } else { "" };
        println!(
            "    {{\"history_len\": {len}, \
             \"cold_sequential_ms\": {:.3}, \"cold_batched_ms\": {:.3}, \
             \"warm_ms\": {:.3}, \"cold_fast_math_ms\": {:.3}, \
             \"speedup_batched\": {:.2}, \"speedup_fast_math\": {:.2}, \
             \"fast_vote_matches\": {fast_vote_matches}}}{comma}",
            measured("cold_sequential_ms", cold_seq_ms),
            measured("cold_batched_ms", cold_batched_ms),
            measured("warm_ms", warm_ms),
            measured("cold_fast_math_ms", cold_fast_ms),
            measured("speedup_batched", cold_seq_ms / cold_batched_ms),
            measured("speedup_fast_math", cold_seq_ms / cold_fast_ms),
        );
    }
    println!("  ],");
    let d = gemm::dispatch_counts();
    println!(
        "  \"dispatch\": {{\"blocked\": {}, \"simd\": {}, \"banded\": {}, \
         \"batched\": {}, \"fma\": {}}}",
        d.blocked, d.simd, d.banded, d.batched, d.fma
    );
    println!("}}");
}
