//! Wire format for model parameters.
//!
//! The feedback loop requires the server to ship the history of the last
//! `ℓ+1` accepted global models to each validating client (paper §VI-D).
//! This module provides the codecs that put those payloads on the wire:
//! a lossless little-endian `f32` codec, lossy linear quantisation codecs
//! (8-bit and 4-bit) standing in for the model-compression techniques the
//! paper cites for its "reduce by ×10" estimate, and a sparse top-k delta
//! codec for shipping a model as a small patch against its predecessor.
//!
//! # Layout
//!
//! Every codec shares the same 12-byte prefix — magic (4), element count
//! (4), FNV-1a checksum (4) — and checksums everything *after* byte
//! [`HEADER`]. Codec-specific fields (quantisation range, delta count)
//! live inside the checksummed region, so a bit flip anywhere past the
//! count is reported as [`DecodeErrorKind::Corrupted`] regardless of
//! codec. Decoders demand exact frame boundaries: trailing bytes after
//! the payload are rejected as [`DecodeErrorKind::Malformed`], which is
//! what lets frames be cut from a TCP stream without a delimiter scan.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// How a wire buffer failed to decode.
///
/// The distinction matters at the server's intake: a [`Malformed`]
/// buffer was *built* wrong (the sender is misbehaving — reject and
/// settle its slot), while a [`Corrupted`] buffer was built correctly
/// and damaged in flight (the checksum no longer matches — blame the
/// link, not the node).
///
/// [`Malformed`]: DecodeErrorKind::Malformed
/// [`Corrupted`]: DecodeErrorKind::Corrupted
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeErrorKind {
    /// Structurally invalid: truncated, trailing bytes, wrong magic,
    /// wrong codec.
    Malformed,
    /// Structurally valid but the payload checksum does not match: the
    /// bytes were damaged after encoding.
    Corrupted,
}

/// Error returned when decoding malformed wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    what: &'static str,
    kind: DecodeErrorKind,
}

impl DecodeError {
    /// A structural failure: the buffer was built wrong. Public so the
    /// message-frame codec in `baffle-net` reports through the same
    /// error type as the parameter codecs.
    pub fn malformed(what: &'static str) -> Self {
        Self { what, kind: DecodeErrorKind::Malformed }
    }

    /// An integrity failure: the buffer was damaged after encoding.
    pub fn corrupted(what: &'static str) -> Self {
        Self { what, kind: DecodeErrorKind::Corrupted }
    }

    /// What kind of failure this is.
    pub fn kind(&self) -> DecodeErrorKind {
        self.kind
    }

    /// Whether the buffer was damaged in flight (checksum mismatch)
    /// rather than built wrong by the sender.
    pub fn is_corruption(&self) -> bool {
        self.kind == DecodeErrorKind::Corrupted
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let adjective = match self.kind {
            DecodeErrorKind::Malformed => "malformed",
            DecodeErrorKind::Corrupted => "corrupted",
        };
        write!(f, "{adjective} wire data: {}", self.what)
    }
}

impl std::error::Error for DecodeError {}

/// Error returned when a parameter vector cannot be encoded.
///
/// The quantising codecs refuse non-finite inputs: NaN `as u8` is 0, so
/// a NaN parameter would silently decode as `lo` — a poisoned update
/// would change value depending on which codec the link picked. Callers
/// that must ship regardless fall back to the lossless codec (see
/// [`Codec::encode`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    what: &'static str,
}

impl EncodeError {
    fn new(what: &'static str) -> Self {
        Self { what }
    }
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot encode wire data: {}", self.what)
    }
}

impl std::error::Error for EncodeError {}

/// FNV-1a over the checksummed region — cheap, dependency-free, and
/// plenty to catch the bit flips the chaos transport injects (this is an
/// integrity check against line noise, not an authenticator). Public so
/// the message-frame codec in `baffle-net` uses the same checksum.
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

const MAGIC_F32: u32 = 0xBAFF_1E32;
// The v1 quantised codecs (0xBAFF_1E08 / 0xBAFF_1E04) carried no
// checksum; the magic doubles as the version, so v2 buffers are never
// misread by a v1 decoder or vice versa.
const MAGIC_Q8: u32 = 0xBAFF_2E08;
const MAGIC_Q4: u32 = 0xBAFF_2E04;
const MAGIC_TOPK: u32 = 0xBAFF_2E7C;

/// Byte offset where the checksummed region starts, shared by every
/// codec: magic + element count + checksum. Public so the fault injector
/// can corrupt payload bytes without touching the (unchecksummed)
/// framing fields.
pub const HEADER: usize = 12;

const Q_HEADER: usize = HEADER + 8; // + lo f32 + scale f32
const TOPK_HEADER: usize = HEADER + 4; // + delta count u32

/// Encodes a parameter vector losslessly (little-endian `f32`).
///
/// # Example
///
/// ```
/// let p = vec![1.0, -2.5, 0.0];
/// let bytes = baffle_nn::wire::encode_f32(&p);
/// let back = baffle_nn::wire::decode_f32(&bytes)?;
/// assert_eq!(p, back);
/// # Ok::<(), baffle_nn::wire::DecodeError>(())
/// ```
pub fn encode_f32(params: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER + params.len() * 4);
    buf.put_u32_le(MAGIC_F32);
    buf.put_u32_le(params.len() as u32);
    buf.put_u32_le(0); // checksum placeholder
    for &p in params {
        buf.put_f32_le(p);
    }
    let sum = fnv1a(&buf[HEADER..]);
    buf[8..12].copy_from_slice(&sum.to_le_bytes());
    buf.freeze()
}

/// Decodes a vector produced by [`encode_f32`].
///
/// # Errors
///
/// Returns [`DecodeError`] if the buffer is truncated, carries trailing
/// bytes, or has the wrong magic number ([`DecodeErrorKind::Malformed`]),
/// or if the payload checksum does not match
/// ([`DecodeErrorKind::Corrupted`] — the buffer was damaged after
/// encoding).
pub fn decode_f32(mut bytes: &[u8]) -> Result<Vec<f32>, DecodeError> {
    if bytes.remaining() < HEADER {
        return Err(DecodeError::malformed("header truncated"));
    }
    if bytes.get_u32_le() != MAGIC_F32 {
        return Err(DecodeError::malformed("bad magic for f32 codec"));
    }
    let n = bytes.get_u32_le() as usize;
    let expected_sum = bytes.get_u32_le();
    if bytes.remaining() < n * 4 {
        return Err(DecodeError::malformed("payload truncated"));
    }
    if bytes.remaining() > n * 4 {
        return Err(DecodeError::malformed("trailing bytes after payload"));
    }
    if fnv1a(bytes) != expected_sum {
        return Err(DecodeError::corrupted("payload checksum mismatch"));
    }
    Ok((0..n).map(|_| bytes.get_f32_le()).collect())
}

fn check_finite(params: &[f32]) -> Result<(), EncodeError> {
    if params.iter().all(|p| p.is_finite()) {
        Ok(())
    } else {
        Err(EncodeError::new("non-finite parameter"))
    }
}

/// Min/max of an all-finite parameter vector; `(0, 0)` when empty.
fn min_max(params: &[f32]) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &p in params {
        lo = lo.min(p);
        hi = hi.max(p);
    }
    if lo > hi {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

/// Encodes with linear 8-bit quantisation (≈4× smaller than `f32`).
///
/// Values are mapped to the integer range `[0, 254]` across the vector's
/// min/max span; the offset and scale are stored in the (checksummed)
/// header so decoding is self-contained.
///
/// # Errors
///
/// Returns [`EncodeError`] if any parameter is non-finite — quantising
/// NaN or ±∞ would silently change its value (NaN `as u8` is 0, i.e. the
/// range minimum). Use [`encode_f32`] for such vectors; it round-trips
/// non-finite values bit-exactly.
pub fn encode_q8(params: &[f32]) -> Result<Bytes, EncodeError> {
    check_finite(params)?;
    let (lo, hi) = min_max(params);
    let scale = ((hi - lo) / 254.0).max(f32::MIN_POSITIVE);
    let mut buf = BytesMut::with_capacity(Q_HEADER + params.len());
    buf.put_u32_le(MAGIC_Q8);
    buf.put_u32_le(params.len() as u32);
    buf.put_u32_le(0); // checksum placeholder
    buf.put_f32_le(lo);
    buf.put_f32_le(scale);
    for &p in params {
        let q = ((p - lo) / scale).round().clamp(0.0, 254.0) as u8;
        buf.put_u8(q);
    }
    let sum = fnv1a(&buf[HEADER..]);
    buf[8..12].copy_from_slice(&sum.to_le_bytes());
    Ok(buf.freeze())
}

/// Decodes a vector produced by [`encode_q8`]. Lossy: values are
/// reconstructed to within one quantisation step.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated, over-long, or mislabeled input
/// ([`DecodeErrorKind::Malformed`]) and on checksum mismatch
/// ([`DecodeErrorKind::Corrupted`]).
pub fn decode_q8(mut bytes: &[u8]) -> Result<Vec<f32>, DecodeError> {
    if bytes.remaining() < Q_HEADER {
        return Err(DecodeError::malformed("header truncated"));
    }
    if bytes.get_u32_le() != MAGIC_Q8 {
        return Err(DecodeError::malformed("bad magic for q8 codec"));
    }
    let n = bytes.get_u32_le() as usize;
    let expected_sum = bytes.get_u32_le();
    if bytes.remaining() < 8 + n {
        return Err(DecodeError::malformed("payload truncated"));
    }
    if bytes.remaining() > 8 + n {
        return Err(DecodeError::malformed("trailing bytes after payload"));
    }
    if fnv1a(bytes) != expected_sum {
        return Err(DecodeError::corrupted("payload checksum mismatch"));
    }
    let lo = bytes.get_f32_le();
    let scale = bytes.get_f32_le();
    Ok((0..n).map(|_| lo + bytes.get_u8() as f32 * scale).collect())
}

/// Encodes with linear 4-bit quantisation (≈8× smaller than `f32`);
/// values map to `[0, 15]`, two per byte (high nibble first, odd tails
/// pad with a zero nibble).
///
/// # Errors
///
/// Returns [`EncodeError`] if any parameter is non-finite (see
/// [`encode_q8`]).
pub fn encode_q4(params: &[f32]) -> Result<Bytes, EncodeError> {
    check_finite(params)?;
    let (lo, hi) = min_max(params);
    let scale = ((hi - lo) / 15.0).max(f32::MIN_POSITIVE);
    let mut buf = BytesMut::with_capacity(Q_HEADER + params.len().div_ceil(2));
    buf.put_u32_le(MAGIC_Q4);
    buf.put_u32_le(params.len() as u32);
    buf.put_u32_le(0); // checksum placeholder
    buf.put_f32_le(lo);
    buf.put_f32_le(scale);
    let quant = |p: f32| ((p - lo) / scale).round().clamp(0.0, 15.0) as u8;
    for pair in params.chunks(2) {
        let hi4 = quant(pair[0]);
        let lo4 = if pair.len() == 2 { quant(pair[1]) } else { 0 };
        buf.put_u8((hi4 << 4) | lo4);
    }
    let sum = fnv1a(&buf[HEADER..]);
    buf[8..12].copy_from_slice(&sum.to_le_bytes());
    Ok(buf.freeze())
}

/// Decodes a vector produced by [`encode_q4`]. Lossy.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated, over-long, or mislabeled input
/// ([`DecodeErrorKind::Malformed`]) and on checksum mismatch
/// ([`DecodeErrorKind::Corrupted`]).
pub fn decode_q4(mut bytes: &[u8]) -> Result<Vec<f32>, DecodeError> {
    if bytes.remaining() < Q_HEADER {
        return Err(DecodeError::malformed("header truncated"));
    }
    if bytes.get_u32_le() != MAGIC_Q4 {
        return Err(DecodeError::malformed("bad magic for q4 codec"));
    }
    let n = bytes.get_u32_le() as usize;
    let expected_sum = bytes.get_u32_le();
    if bytes.remaining() < 8 + n.div_ceil(2) {
        return Err(DecodeError::malformed("payload truncated"));
    }
    if bytes.remaining() > 8 + n.div_ceil(2) {
        return Err(DecodeError::malformed("trailing bytes after payload"));
    }
    if fnv1a(bytes) != expected_sum {
        return Err(DecodeError::corrupted("payload checksum mismatch"));
    }
    let lo = bytes.get_f32_le();
    let scale = bytes.get_f32_le();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let b = bytes.get_u8();
        out.push(lo + (b >> 4) as f32 * scale);
        if out.len() < n {
            out.push(lo + (b & 0x0F) as f32 * scale);
        }
    }
    Ok(out)
}

/// A decoded sparse top-k delta: up to `k` (index, delta) pairs against
/// a base vector of length `n`. Produced by [`decode_topk`]; applied to
/// the predecessor model with [`TopKDelta::apply`].
#[derive(Debug, Clone, PartialEq)]
pub struct TopKDelta {
    n: usize,
    entries: Vec<(u32, f32)>,
}

impl TopKDelta {
    /// Length of the base (and reconstructed) parameter vector.
    pub fn param_len(&self) -> usize {
        self.n
    }

    /// The retained (index, delta) pairs, indices strictly increasing.
    pub fn entries(&self) -> &[(u32, f32)] {
        &self.entries
    }

    /// Reconstructs the target vector: `base` plus the retained deltas
    /// (coordinates not retained keep their base value — this is the
    /// lossy half of the codec).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] ([`DecodeErrorKind::Malformed`]) if
    /// `base` does not have the encoded length — the caller applied the
    /// delta to the wrong model.
    pub fn apply(&self, base: &[f32]) -> Result<Vec<f32>, DecodeError> {
        if base.len() != self.n {
            return Err(DecodeError::malformed("top-k base length mismatch"));
        }
        let mut out = base.to_vec();
        for &(idx, delta) in &self.entries {
            out[idx as usize] += delta;
        }
        Ok(out)
    }
}

/// Encodes `target` as a sparse delta against `base`, keeping only the
/// `k` coordinates with the largest absolute change (ties broken by
/// index, so the encoding is deterministic). Coordinates not kept decode
/// to their base value — the codec is lossy unless `k >= target.len()`.
///
/// Size on the wire is `16 + 8k` bytes versus `12 + 4n` for the dense
/// `f32` codec, so it wins whenever fewer than ~half the coordinates
/// moved meaningfully.
///
/// # Errors
///
/// Returns [`EncodeError`] if `base` and `target` differ in length or
/// either contains a non-finite value.
pub fn encode_topk(base: &[f32], target: &[f32], k: usize) -> Result<Bytes, EncodeError> {
    if base.len() != target.len() {
        return Err(EncodeError::new("top-k base/target length mismatch"));
    }
    check_finite(base)?;
    check_finite(target)?;
    let n = target.len();
    let k = k.min(n);
    let mut ranked: Vec<(u32, f32)> =
        base.iter().zip(target).enumerate().map(|(i, (&b, &t))| (i as u32, t - b)).collect();
    // Total order (magnitude desc, index asc): the selected set is
    // deterministic even where magnitudes tie.
    if k > 0 {
        ranked.select_nth_unstable_by(k - 1, |a, b| {
            b.1.abs().partial_cmp(&a.1.abs()).expect("finite deltas compare").then(a.0.cmp(&b.0))
        });
    }
    ranked.truncate(k);
    ranked.sort_unstable_by_key(|&(idx, _)| idx);
    let mut buf = BytesMut::with_capacity(TOPK_HEADER + k * 8);
    buf.put_u32_le(MAGIC_TOPK);
    buf.put_u32_le(n as u32);
    buf.put_u32_le(0); // checksum placeholder
    buf.put_u32_le(k as u32);
    for &(idx, _) in &ranked {
        buf.put_u32_le(idx);
    }
    for &(_, delta) in &ranked {
        buf.put_f32_le(delta);
    }
    let sum = fnv1a(&buf[HEADER..]);
    buf[8..12].copy_from_slice(&sum.to_le_bytes());
    Ok(buf.freeze())
}

/// Decodes a buffer produced by [`encode_topk`]. The result still needs
/// the base vector — see [`TopKDelta::apply`].
///
/// # Errors
///
/// Returns [`DecodeError`] on structural damage (truncation, trailing
/// bytes, wrong magic, out-of-range or non-increasing indices —
/// [`DecodeErrorKind::Malformed`]) and on checksum mismatch
/// ([`DecodeErrorKind::Corrupted`]).
pub fn decode_topk(mut bytes: &[u8]) -> Result<TopKDelta, DecodeError> {
    if bytes.remaining() < TOPK_HEADER {
        return Err(DecodeError::malformed("header truncated"));
    }
    if bytes.get_u32_le() != MAGIC_TOPK {
        return Err(DecodeError::malformed("bad magic for top-k codec"));
    }
    let n = bytes.get_u32_le() as usize;
    let expected_sum = bytes.get_u32_le();
    let checksummed: &[u8] = bytes;
    let k = bytes.get_u32_le() as usize;
    // Length before checksum so trailing garbage on an intact buffer is
    // Malformed, not Corrupted. (A bit flip in the k field therefore
    // also lands here, as a length mismatch.)
    if bytes.remaining() < k.saturating_mul(8) {
        return Err(DecodeError::malformed("payload truncated"));
    }
    if bytes.remaining() > k.saturating_mul(8) {
        return Err(DecodeError::malformed("trailing bytes after payload"));
    }
    if fnv1a(checksummed) != expected_sum {
        return Err(DecodeError::corrupted("payload checksum mismatch"));
    }
    if k > n {
        return Err(DecodeError::malformed("top-k keeps more entries than parameters"));
    }
    let mut indices = Vec::with_capacity(k);
    for _ in 0..k {
        indices.push(bytes.get_u32_le());
    }
    for pair in indices.windows(2) {
        if pair[1] <= pair[0] {
            return Err(DecodeError::malformed("top-k indices not strictly increasing"));
        }
    }
    if let Some(&last) = indices.last() {
        if last as usize >= n {
            return Err(DecodeError::malformed("top-k index out of range"));
        }
    }
    let entries = indices.into_iter().map(|idx| (idx, bytes.get_f32_le())).collect();
    Ok(TopKDelta { n, entries })
}

/// Whether `bytes` start with the top-k delta magic — the one codec
/// [`decode_any`] cannot handle alone, because reconstruction needs the
/// predecessor model.
pub fn is_topk(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) == MAGIC_TOPK
}

/// Decodes a self-contained parameter buffer of any codec, dispatching
/// on the magic number.
///
/// # Errors
///
/// Returns [`DecodeError`] for unknown magics and top-k deltas (which
/// need a base model — use [`decode_topk`]), plus whatever the
/// dispatched decoder reports.
pub fn decode_any(bytes: &[u8]) -> Result<Vec<f32>, DecodeError> {
    if bytes.len() < 4 {
        return Err(DecodeError::malformed("header truncated"));
    }
    match u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) {
        MAGIC_F32 => decode_f32(bytes),
        MAGIC_Q8 => decode_q8(bytes),
        MAGIC_Q4 => decode_q4(bytes),
        MAGIC_TOPK => Err(DecodeError::malformed("top-k delta needs a base model")),
        _ => Err(DecodeError::malformed("unknown codec magic")),
    }
}

/// A self-contained parameter codec, selectable per link by the wire
/// profile. Decoding is codec-agnostic via [`decode_any`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// Lossless little-endian `f32` ([`encode_f32`]).
    F32,
    /// Linear 8-bit quantisation ([`encode_q8`]), ≈4× smaller.
    Q8,
    /// Linear 4-bit quantisation ([`encode_q4`]), ≈8× smaller.
    Q4,
}

impl Codec {
    /// Short name for reports and tables.
    pub fn label(self) -> &'static str {
        match self {
            Codec::F32 => "f32",
            Codec::Q8 => "q8",
            Codec::Q4 => "q4",
        }
    }

    /// Encoded size in bytes for an `n`-parameter vector.
    pub fn encoded_len(self, n: usize) -> usize {
        match self {
            Codec::F32 => HEADER + n * 4,
            Codec::Q8 => Q_HEADER + n,
            Codec::Q4 => Q_HEADER + n.div_ceil(2),
        }
    }

    /// Encodes with this codec, propagating quantiser refusals.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] if the codec quantises and `params`
    /// contains a non-finite value. [`Codec::F32`] never fails.
    pub fn try_encode(self, params: &[f32]) -> Result<Bytes, EncodeError> {
        match self {
            Codec::F32 => Ok(encode_f32(params)),
            Codec::Q8 => encode_q8(params),
            Codec::Q4 => encode_q4(params),
        }
    }

    /// Encodes with this codec, falling back to the lossless `f32`
    /// codec when the quantiser refuses (non-finite values must reach
    /// the receiver unchanged — the validation pipeline, not the wire,
    /// judges poisoned updates). Receivers decode via [`decode_any`],
    /// so the fallback is transparent.
    pub fn encode(self, params: &[f32]) -> Bytes {
        self.try_encode(params).unwrap_or_else(|_| encode_f32(params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_params(n: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(99);
        baffle_tensor::rng::normal_vec(&mut rng, n, 0.0, 0.3)
    }

    #[test]
    fn f32_roundtrip_is_exact() {
        let p = sample_params(1000);
        assert_eq!(decode_f32(&encode_f32(&p)).unwrap(), p);
    }

    #[test]
    fn f32_empty_roundtrip() {
        let p: Vec<f32> = Vec::new();
        assert_eq!(decode_f32(&encode_f32(&p)).unwrap(), p);
    }

    #[test]
    fn q8_roundtrip_within_one_step() {
        let p = sample_params(1000);
        let back = decode_q8(&encode_q8(&p).unwrap()).unwrap();
        let (lo, hi) = super::min_max(&p);
        let step = (hi - lo) / 254.0;
        for (&a, &b) in p.iter().zip(&back) {
            assert!((a - b).abs() <= step, "{a} vs {b}, step {step}");
        }
    }

    #[test]
    fn q4_roundtrip_within_one_step() {
        let p = sample_params(1001); // odd length exercises the padding path
        let back = decode_q4(&encode_q4(&p).unwrap()).unwrap();
        assert_eq!(back.len(), p.len());
        let (lo, hi) = super::min_max(&p);
        let step = (hi - lo) / 15.0;
        for (&a, &b) in p.iter().zip(&back) {
            assert!((a - b).abs() <= step, "{a} vs {b}, step {step}");
        }
    }

    #[test]
    fn quantised_empty_roundtrips() {
        let p: Vec<f32> = Vec::new();
        assert_eq!(decode_q8(&encode_q8(&p).unwrap()).unwrap(), p);
        assert_eq!(decode_q4(&encode_q4(&p).unwrap()).unwrap(), p);
    }

    #[test]
    fn compression_ratios() {
        let p = sample_params(10_000);
        let f = encode_f32(&p).len();
        let q8 = encode_q8(&p).unwrap().len();
        let q4 = encode_q4(&p).unwrap().len();
        assert!(f as f32 / q8 as f32 > 3.9, "q8 ratio {}", f as f32 / q8 as f32);
        assert!(f as f32 / q4 as f32 > 7.8, "q4 ratio {}", f as f32 / q4 as f32);
    }

    #[test]
    fn constant_vector_quantises_exactly() {
        let p = vec![0.5; 100];
        let back = decode_q8(&encode_q8(&p).unwrap()).unwrap();
        for &b in &back {
            assert!((b - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn payload_bit_flip_is_reported_as_corruption() {
        let p = sample_params(64);
        let enc = encode_f32(&p);
        let mut damaged = enc.to_vec();
        damaged[HEADER + 17] ^= 0x40;
        let err = decode_f32(&damaged).unwrap_err();
        assert!(err.is_corruption(), "bit flip must be detected as corruption: {err}");
        assert_eq!(err.kind(), DecodeErrorKind::Corrupted);
        // Structural damage is *not* corruption: a truncated buffer and a
        // wrong-codec buffer are the sender's fault.
        let err = decode_f32(&enc[..enc.len() - 1]).unwrap_err();
        assert!(!err.is_corruption());
        let err = decode_f32(&encode_q8(&p).unwrap()).unwrap_err();
        assert!(!err.is_corruption());
    }

    #[test]
    fn q8_bit_flip_is_reported_as_corruption() {
        let p = sample_params(64);
        let enc = encode_q8(&p).unwrap();
        // Flip one bit everywhere past the unchecksummed magic+count:
        // checksum field, lo, scale, and payload are all covered.
        for at in [8, HEADER, HEADER + 4, Q_HEADER, enc.len() - 1] {
            let mut damaged = enc.to_vec();
            damaged[at] ^= 0x10;
            let err = decode_q8(&damaged).unwrap_err();
            assert!(err.is_corruption(), "flip at {at} must be corruption: {err}");
        }
    }

    #[test]
    fn q4_bit_flip_is_reported_as_corruption() {
        let p = sample_params(65); // odd: also covers the padding nibble
        let enc = encode_q4(&p).unwrap();
        for at in [8, HEADER, HEADER + 4, Q_HEADER, enc.len() - 1] {
            let mut damaged = enc.to_vec();
            damaged[at] ^= 0x01;
            let err = decode_q4(&damaged).unwrap_err();
            assert!(err.is_corruption(), "flip at {at} must be corruption: {err}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let p = sample_params(10);
        for enc in [encode_f32(&p), encode_q8(&p).unwrap(), encode_q4(&p).unwrap()] {
            let mut long = enc.to_vec();
            long.push(0);
            let err = decode_any(&long).unwrap_err();
            assert_eq!(err.kind(), DecodeErrorKind::Malformed, "{err}");
        }
        let mut long = encode_topk(&p, &p, 4).unwrap().to_vec();
        long.push(0);
        assert_eq!(decode_topk(&long).unwrap_err().kind(), DecodeErrorKind::Malformed);
    }

    #[test]
    fn quantisers_reject_non_finite_input() {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let p = vec![0.0, bad, 1.0];
            assert!(encode_q8(&p).is_err(), "q8 must refuse {bad}");
            assert!(encode_q4(&p).is_err(), "q4 must refuse {bad}");
            assert!(encode_topk(&p, &[0.0; 3], 1).is_err());
            assert!(encode_topk(&[0.0; 3], &p, 1).is_err());
            // The lossless codec carries the same vector bit-exactly.
            let back = decode_f32(&encode_f32(&p)).unwrap();
            assert_eq!(back[1].to_bits(), bad.to_bits());
        }
    }

    #[test]
    fn topk_full_rank_roundtrip_is_exact() {
        let base = sample_params(200);
        let target: Vec<f32> = base.iter().map(|&b| b * 1.5 + 0.01).collect();
        let enc = encode_topk(&base, &target, 200).unwrap();
        let delta = decode_topk(&enc).unwrap();
        assert_eq!(delta.param_len(), 200);
        let back = delta.apply(&base).unwrap();
        for (&t, &b) in target.iter().zip(&back) {
            assert!((t - b).abs() < 1e-6, "{t} vs {b}");
        }
    }

    #[test]
    fn topk_keeps_largest_deltas_and_bases_the_rest() {
        let base = vec![0.0; 8];
        let target = vec![0.0, 5.0, 0.1, -7.0, 0.0, 0.2, 3.0, 0.0];
        let enc = encode_topk(&base, &target, 3).unwrap();
        let delta = decode_topk(&enc).unwrap();
        assert_eq!(delta.entries().iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![1, 3, 6]);
        let back = delta.apply(&base).unwrap();
        assert_eq!(back, vec![0.0, 5.0, 0.0, -7.0, 0.0, 0.0, 3.0, 0.0]);
        // Applying against a wrong-length base is refused.
        assert!(delta.apply(&[0.0; 7]).is_err());
    }

    #[test]
    fn topk_bit_flip_is_reported_as_corruption() {
        let base = sample_params(100);
        let target: Vec<f32> = base.iter().map(|&b| b + 0.01).collect();
        let enc = encode_topk(&base, &target, 10).unwrap();
        // Byte 8 hits the checksum field, TOPK_HEADER.. hit index bytes,
        // the tail hits a delta value. (A flip in the k field at byte 12
        // reports Malformed instead — the frame length no longer adds up.)
        for at in [8, TOPK_HEADER, TOPK_HEADER + 3, enc.len() - 1] {
            let mut damaged = enc.to_vec();
            damaged[at] ^= 0x08;
            let err = decode_topk(&damaged).unwrap_err();
            assert!(err.is_corruption(), "flip at {at} must be corruption: {err}");
        }
    }

    #[test]
    fn decode_any_dispatches_on_magic() {
        let p = sample_params(32);
        assert_eq!(decode_any(&encode_f32(&p)).unwrap(), p);
        assert_eq!(
            decode_any(&encode_q8(&p).unwrap()).unwrap(),
            decode_q8(&encode_q8(&p).unwrap()).unwrap()
        );
        assert_eq!(
            decode_any(&encode_q4(&p).unwrap()).unwrap(),
            decode_q4(&encode_q4(&p).unwrap()).unwrap()
        );
        // Top-k needs a base, so decode_any refuses it (structurally).
        let topk = encode_topk(&p, &p, 4).unwrap();
        assert!(is_topk(&topk));
        assert!(!is_topk(&encode_f32(&p)));
        assert_eq!(decode_any(&topk).unwrap_err().kind(), DecodeErrorKind::Malformed);
        // Unknown magic.
        assert!(decode_any(&[0xAA; 16]).is_err());
        assert!(decode_any(&[]).is_err());
    }

    #[test]
    fn codec_encode_falls_back_to_lossless_on_non_finite() {
        let p = vec![1.0, f32::NAN, -2.0];
        for codec in [Codec::Q8, Codec::Q4] {
            assert!(codec.try_encode(&p).is_err());
            let back = decode_any(&codec.encode(&p)).unwrap();
            assert_eq!(back[0], 1.0);
            assert!(back[1].is_nan());
            assert_eq!(back[2], -2.0);
        }
    }

    #[test]
    fn codec_encoded_len_matches_reality() {
        let p = sample_params(101);
        for codec in [Codec::F32, Codec::Q8, Codec::Q4] {
            assert_eq!(codec.encode(&p).len(), codec.encoded_len(p.len()), "{}", codec.label());
        }
    }

    #[test]
    fn wrong_magic_errors() {
        let p = sample_params(10);
        let enc = encode_q8(&p).unwrap();
        assert!(decode_f32(&enc).is_err());
        let enc = encode_f32(&p);
        assert!(decode_q8(&enc).is_err());
        assert!(decode_q4(&enc).is_err());
        assert!(decode_topk(&enc).is_err());
    }

    #[test]
    fn decode_error_displays() {
        let err = decode_f32(&[]).unwrap_err();
        assert!(err.to_string().contains("malformed"));
        let err = encode_q8(&[f32::NAN]).unwrap_err();
        assert!(err.to_string().contains("non-finite"));
    }
}
