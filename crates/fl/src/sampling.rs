//! Client selection.

use rand::seq::SliceRandom;
use rand::Rng;

/// Selects `n` distinct client indices uniformly at random from
/// `0..total` (the per-round contributor/validator draw of §II-B).
///
/// # Panics
///
/// Panics if `n > total`.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(4);
/// let picked = baffle_fl::sampling::select_clients(&mut rng, 100, 10);
/// assert_eq!(picked.len(), 10);
/// ```
pub fn select_clients<R: Rng + ?Sized>(rng: &mut R, total: usize, n: usize) -> Vec<usize> {
    assert!(n <= total, "select_clients: cannot select {n} of {total}");
    // Full Fisher–Yates shuffle of `0..total`, then truncate: O(total)
    // time and memory. Kept as a *full* shuffle deliberately — a partial
    // draw (`choose_multiple`) consumes the RNG differently and would
    // silently change every seeded experiment.
    let mut all: Vec<usize> = (0..total).collect();
    all.shuffle(rng);
    all.truncate(n);
    all
}

/// Selects contributors and validators for one round.
///
/// The paper's communication-saving variant (§VI-D) sets the validating
/// clients equal to the contributing clients; `disjoint = true` selects
/// two disjoint sets instead (the general Algorithm 1 formulation).
///
/// # Panics
///
/// Panics if the requested sets cannot be drawn from `total` clients.
pub fn select_round_clients<R: Rng + ?Sized>(
    rng: &mut R,
    total: usize,
    contributors: usize,
    validators: usize,
    disjoint: bool,
) -> (Vec<usize>, Vec<usize>) {
    if disjoint {
        assert!(
            contributors + validators <= total,
            "select_round_clients: cannot draw {contributors}+{validators} disjoint from {total}"
        );
        let both = select_clients(rng, total, contributors + validators);
        let (c, v) = both.split_at(contributors);
        (c.to_vec(), v.to_vec())
    } else {
        assert!(
            contributors.max(validators) <= total,
            "select_round_clients: cannot draw {} from {total}",
            contributors.max(validators)
        );
        let c = select_clients(rng, total, contributors);
        let v = select_clients(rng, total, validators);
        (c, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selection_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = select_clients(&mut rng, 30, 10);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10, "duplicates in {s:?}");
            assert!(s.iter().all(|&i| i < 30));
        }
    }

    #[test]
    fn selecting_all_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = select_clients(&mut rng, 8, 8);
        s.sort_unstable();
        assert_eq!(s, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn selection_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 20];
        let trials = 5000;
        for _ in 0..trials {
            for i in select_clients(&mut rng, 20, 5) {
                counts[i] += 1;
            }
        }
        // Each client expected trials * 5/20 = 1250 draws.
        for (i, &c) in counts.iter().enumerate() {
            assert!((1100..1400).contains(&c), "client {i} drawn {c} times");
        }
    }

    #[test]
    fn disjoint_round_selection_does_not_overlap() {
        let mut rng = StdRng::seed_from_u64(4);
        let (c, v) = select_round_clients(&mut rng, 40, 10, 10, true);
        assert_eq!(c.len(), 10);
        assert_eq!(v.len(), 10);
        assert!(c.iter().all(|i| !v.contains(i)));
    }

    #[test]
    fn overlapping_round_selection_allows_overlap() {
        let mut rng = StdRng::seed_from_u64(5);
        // With total == contributors == validators the sets must overlap.
        let (c, v) = select_round_clients(&mut rng, 10, 10, 10, false);
        assert_eq!(c.len(), 10);
        assert_eq!(v.len(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn oversampling_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = select_clients(&mut rng, 3, 5);
    }
}
