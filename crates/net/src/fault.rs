//! Deterministic fault injection for the in-process transport.
//!
//! A [`FaultPlan`] describes everything that can go wrong on the wire:
//! per-link [`LinkPolicy`]s (i.i.d. drop, delay with jitter, duplication,
//! reordering, payload byte-corruption) plus **round-scoped scripted
//! events** — partition node X during rounds `a..=b`, crash-stop client
//! Y at round `r` and restart it at round `r'`, or drop every message of
//! one kind to one destination in a given round. All randomness is drawn
//! from one seeded RNG owned by the [`Network`](crate::transport::Network),
//! so a plan replays the same fault decisions for the same send sequence.
//!
//! The probabilistic faults model a flaky link; the scripted events model
//! the failures the paper's footnote 1 glosses over (silent validators)
//! plus the ones it does not mention at all: node crashes and partitions
//! that leave a validator's cached history window stale or gapped. The
//! recovery machinery those faults flush out — acknowledged history sync,
//! client window repair, server checkpointing — lives in
//! [`crate::server`], [`crate::client`] and
//! [`baffle_fl::history_sync`].

use crate::message::{Message, NodeId};
use baffle_nn::wire;
use bytes::{Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::RangeInclusive;
use std::time::Duration;

/// Per-link fault probabilities and latency. The default is a perfect
/// link ([`LinkPolicy::lossless`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkPolicy {
    /// Probability of dropping a message outright.
    pub drop_prob: f64,
    /// Base one-way latency added to every message.
    pub delay: Duration,
    /// Uniform extra latency in `[0, jitter]` added per message.
    pub jitter: Duration,
    /// Probability of delivering a message twice.
    pub duplicate_prob: f64,
    /// Probability of holding a message back by an extra uniform delay
    /// in `(0, reorder_window]`, letting later sends overtake it.
    pub reorder_prob: f64,
    /// Maximum holdback applied to a reordered message.
    pub reorder_window: Duration,
    /// Probability of flipping bits in the message's wire payload.
    /// Corruption touches only payload bytes (past the codec header), so
    /// the damage is detectable by the [`baffle_nn::wire`] checksum and
    /// attributable to the link rather than the sender.
    pub corrupt_prob: f64,
}

impl LinkPolicy {
    /// A perfect link: nothing is dropped, delayed, duplicated,
    /// reordered or corrupted.
    pub const fn lossless() -> Self {
        Self {
            drop_prob: 0.0,
            delay: Duration::ZERO,
            jitter: Duration::ZERO,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_window: Duration::ZERO,
            corrupt_prob: 0.0,
        }
    }

    /// Sets the i.i.d. drop probability (closed interval `[0, 1]` —
    /// `1.0` expresses a total blackout).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`; same for the other `with_*`
    /// probability setters.
    pub fn with_drop(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop_prob must be in [0, 1], got {p}");
        self.drop_prob = p;
        self
    }

    /// Sets the base delay and uniform jitter.
    pub fn with_delay(mut self, base: Duration, jitter: Duration) -> Self {
        self.delay = base;
        self.jitter = jitter;
        self
    }

    /// Sets the duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "duplicate_prob must be in [0, 1], got {p}");
        self.duplicate_prob = p;
        self
    }

    /// Sets the reordering probability and holdback window.
    pub fn with_reorder(mut self, p: f64, window: Duration) -> Self {
        assert!((0.0..=1.0).contains(&p), "reorder_prob must be in [0, 1], got {p}");
        self.reorder_prob = p;
        self.reorder_window = window;
        self
    }

    /// Sets the payload-corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "corrupt_prob must be in [0, 1], got {p}");
        self.corrupt_prob = p;
        self
    }

    /// Whether any probabilistic fault can fire on this link.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.reorder_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.delay > Duration::ZERO
            || self.jitter > Duration::ZERO
    }

    /// Whether this link can defer delivery (needs the delivery pump).
    pub fn needs_pump(&self) -> bool {
        self.delay > Duration::ZERO || self.jitter > Duration::ZERO || self.reorder_prob > 0.0
    }
}

impl Default for LinkPolicy {
    fn default() -> Self {
        Self::lossless()
    }
}

/// Selects the links a [`LinkPolicy`] override applies to. `None` on
/// either side means "any node".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSelector {
    /// Sending side, or any.
    pub from: Option<NodeId>,
    /// Receiving side, or any.
    pub to: Option<NodeId>,
}

impl LinkSelector {
    /// Every link.
    pub const ANY: LinkSelector = LinkSelector { from: None, to: None };

    /// Every link delivering *to* `node`.
    pub fn to(node: NodeId) -> Self {
        Self { from: None, to: Some(node) }
    }

    /// Every link sending *from* `node`.
    pub fn from(node: NodeId) -> Self {
        Self { from: Some(node), to: None }
    }

    /// Whether this selector covers the `(from, to)` link.
    pub fn matches(&self, from: NodeId, to: NodeId) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// A round-scoped scripted failure.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Node `node` is unreachable during `rounds` (inclusive): every
    /// message to or from it is dropped at the transport.
    Partition {
        /// The partitioned node.
        node: NodeId,
        /// Protocol rounds (1-based, inclusive) the partition spans.
        rounds: RangeInclusive<u64>,
    },
    /// Client `node` crash-stops at the start of round `at_round` (its
    /// actor exits and all in-memory state — including the cached
    /// history window — is lost) and, if `restart_round` is set, rejoins
    /// with fresh state at the start of that round.
    ///
    /// The transport only records this event; executing it (stopping and
    /// respawning the actor) is the deployment harness's job, via
    /// [`FaultPlan::crashes_at`] / [`FaultPlan::restarts_at`].
    Crash {
        /// The crashing client.
        node: NodeId,
        /// Round (1-based) at whose start the client dies.
        at_round: u64,
        /// Round at whose start it rejoins, if ever.
        restart_round: Option<u64>,
    },
    /// Every message of kind `kind` (see [`Message::kind`]) addressed to
    /// `to` is dropped during `rounds` — a surgical fault for regression
    /// tests (e.g. "lose exactly the `ValidateRequest`s of round 2").
    DropKind {
        /// Destination whose inbound messages are filtered, or any.
        to: Option<NodeId>,
        /// Rounds (1-based, inclusive) the filter is active.
        rounds: RangeInclusive<u64>,
        /// The [`Message::kind`] label to drop.
        kind: &'static str,
    },
}

/// A seeded, deterministic description of everything the transport
/// should inflict: a default [`LinkPolicy`], per-link overrides (first
/// matching selector wins), and scripted [`FaultEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the transport's fault RNG.
    pub seed: u64,
    default_policy: LinkPolicy,
    links: Vec<(LinkSelector, LinkPolicy)>,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan that injects nothing (the transport behaves perfectly).
    pub fn lossless(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// A plan applying `policy` to every link.
    pub fn uniform(policy: LinkPolicy, seed: u64) -> Self {
        Self { seed, default_policy: policy, links: Vec::new(), events: Vec::new() }
    }

    /// Adds a per-link policy override. Overrides are consulted in
    /// insertion order; the first matching selector wins.
    pub fn link(mut self, selector: LinkSelector, policy: LinkPolicy) -> Self {
        self.links.push((selector, policy));
        self
    }

    /// Adds a scripted event.
    pub fn event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// The policy governing the `(from, to)` link.
    pub fn policy(&self, from: NodeId, to: NodeId) -> &LinkPolicy {
        self.links
            .iter()
            .find(|(sel, _)| sel.matches(from, to))
            .map(|(_, p)| p)
            .unwrap_or(&self.default_policy)
    }

    /// Whether any link can ever defer delivery.
    pub fn needs_pump(&self) -> bool {
        self.default_policy.needs_pump() || self.links.iter().any(|(_, p)| p.needs_pump())
    }

    /// Whether `node` is partitioned during `round`.
    pub fn is_partitioned(&self, round: u64, node: NodeId) -> bool {
        self.events.iter().any(|e| {
            matches!(e, FaultEvent::Partition { node: n, rounds } if *n == node && rounds.contains(&round))
        })
    }

    /// Whether a scripted [`FaultEvent::DropKind`] filter drops a
    /// message of `kind` addressed to `to` during `round`.
    pub fn drops_kind(&self, round: u64, to: NodeId, kind: &str) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                FaultEvent::DropKind { to: t, rounds, kind: k }
                    if t.is_none_or(|t| t == to) && rounds.contains(&round) && *k == kind
            )
        })
    }

    /// Clients scripted to crash-stop at the start of `round`.
    pub fn crashes_at(&self, round: u64) -> impl Iterator<Item = NodeId> + '_ {
        self.events.iter().filter_map(move |e| match e {
            FaultEvent::Crash { node, at_round, .. } if *at_round == round => Some(*node),
            _ => None,
        })
    }

    /// Clients scripted to rejoin with fresh state at the start of
    /// `round`.
    pub fn restarts_at(&self, round: u64) -> impl Iterator<Item = NodeId> + '_ {
        self.events.iter().filter_map(move |e| match e {
            FaultEvent::Crash { node, restart_round: Some(r), .. } if *r == round => Some(*node),
            _ => None,
        })
    }

    /// The scripted events, for harnesses that execute them.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// A one-line human summary — printed by chaos tests on failure so
    /// a panicking seed reproduces without bisecting: the fault RNG
    /// seed, the default link policy, every per-link override and the
    /// scripted events.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let policy = |p: &LinkPolicy| {
            format!(
                "drop {:.2} · delay {:?}+{:?} · dup {:.2} · reorder {:.2}@{:?} · corrupt {:.2}",
                p.drop_prob, p.delay, p.jitter, p.duplicate_prob, p.reorder_prob,
                p.reorder_window, p.corrupt_prob
            )
        };
        let mut out =
            format!("fault seed {} | default link: {}", self.seed, policy(&self.default_policy));
        for (selector, p) in &self.links {
            let _ = write!(out, " | link {selector:?}: {}", policy(p));
        }
        for event in &self.events {
            let _ = write!(out, " | event {event:?}");
        }
        out
    }
}

/// Flips 1–4 random bits in one wire payload of `message`, past the
/// codec header so the damage lands in checksummed territory (a real
/// link-layer CRC would catch header damage; the end-to-end checksum is
/// what the protocol itself must survive). Returns `false` when the
/// message carries no corruptible payload.
pub(crate) fn corrupt_message(message: &mut Message, rng: &mut StdRng) -> bool {
    let payload: &mut Bytes = match message {
        Message::TrainRequest { global, .. } => global,
        Message::UpdateSubmission { update, .. } => update,
        Message::ValidateRequest { candidate, history_delta, .. } => {
            // Damage one of the shipped models uniformly: the candidate
            // or a history entry (gapping the client's window is exactly
            // the failure mode the sync protocol must absorb).
            let n = history_delta.len();
            if n > 0 && rng.gen_range(0..=n) > 0 {
                &mut history_delta[rng.gen_range(0..n)].params
            } else {
                candidate
            }
        }
        _ => return false,
    };
    if payload.len() <= wire::HEADER {
        return false;
    }
    let mut buf = BytesMut::from(payload.as_ref());
    for _ in 0..rng.gen_range(1..=4u32) {
        let at = rng.gen_range(wire::HEADER..buf.len());
        buf[at] ^= 1 << rng.gen_range(0..8u32);
    }
    *payload = buf.freeze();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn selector_matching() {
        let any = LinkSelector::ANY;
        assert!(any.matches(NodeId(0), NodeId(1)));
        let to_two = LinkSelector::to(NodeId(2));
        assert!(to_two.matches(NodeId(7), NodeId(2)));
        assert!(!to_two.matches(NodeId(2), NodeId(7)));
        let from_srv = LinkSelector::from(NodeId::SERVER);
        assert!(from_srv.matches(NodeId::SERVER, NodeId(0)));
        assert!(!from_srv.matches(NodeId(0), NodeId::SERVER));
    }

    #[test]
    fn first_matching_link_override_wins() {
        let plan = FaultPlan::uniform(LinkPolicy::lossless().with_drop(0.1), 1)
            .link(LinkSelector::to(NodeId(3)), LinkPolicy::lossless().with_drop(0.9))
            .link(LinkSelector::ANY, LinkPolicy::lossless());
        assert_eq!(plan.policy(NodeId(0), NodeId(3)).drop_prob, 0.9);
        assert_eq!(plan.policy(NodeId(0), NodeId(4)).drop_prob, 0.0, "ANY override wins");
    }

    #[test]
    fn scripted_events_are_round_scoped() {
        let plan = FaultPlan::lossless(0)
            .event(FaultEvent::Partition { node: NodeId(5), rounds: 2..=3 })
            .event(FaultEvent::Crash { node: NodeId(1), at_round: 4, restart_round: Some(6) })
            .event(FaultEvent::DropKind { to: None, rounds: 2..=2, kind: "validate-request" });
        assert!(!plan.is_partitioned(1, NodeId(5)));
        assert!(plan.is_partitioned(2, NodeId(5)));
        assert!(plan.is_partitioned(3, NodeId(5)));
        assert!(!plan.is_partitioned(4, NodeId(5)));
        assert_eq!(plan.crashes_at(4).collect::<Vec<_>>(), vec![NodeId(1)]);
        assert_eq!(plan.crashes_at(5).count(), 0);
        assert_eq!(plan.restarts_at(6).collect::<Vec<_>>(), vec![NodeId(1)]);
        assert!(plan.drops_kind(2, NodeId(9), "validate-request"));
        assert!(!plan.drops_kind(3, NodeId(9), "validate-request"));
        assert!(!plan.drops_kind(2, NodeId(9), "train-request"));
    }

    #[test]
    fn corruption_is_detectable_and_header_safe() {
        let mut rng = StdRng::seed_from_u64(7);
        let params = vec![0.5f32; 100];
        for _ in 0..50 {
            let mut msg = Message::TrainRequest { round: 1, global: wire::encode_f32(&params) };
            assert!(corrupt_message(&mut msg, &mut rng));
            let Message::TrainRequest { global, .. } = &msg else { unreachable!() };
            let err = wire::decode_f32(global).expect_err("corruption must not decode cleanly");
            assert!(err.is_corruption(), "damage must be attributed to the link: {err}");
        }
    }

    #[test]
    fn messages_without_wire_payloads_are_never_corrupted() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut msg = Message::RoundResult { round: 3, accepted: true };
        assert!(!corrupt_message(&mut msg, &mut rng));
        let mut msg = Message::Shutdown;
        assert!(!corrupt_message(&mut msg, &mut rng));
    }
}
