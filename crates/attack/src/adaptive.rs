//! Adaptive, defense-aware attack (paper §VI-C).
//!
//! The adaptive attacker knows the deployed validation method and the
//! system parameters `(ℓ, q)`. It cannot see honest clients' data, but it
//! can run a **local copy** of the validation function on its *own* data
//! and tune the poisoned update until that local check accepts — the
//! strongest realistic evasion the paper considers.
//!
//! The tuning knob is a damping coefficient `t ∈ [0, 1]` interpolating
//! between a benign update (`t = 0`) and the full poisoned update
//! (`t = 1`). The attacker binary-searches for the largest `t` whose
//! damped update still passes its local validator; the paper's result is
//! that such updates nonetheless fail validation on honest clients'
//! diverse data.

use baffle_tensor::ops;

/// Outcome of the adaptive damping search.
#[derive(Debug, Clone, PartialEq)]
pub struct DampedUpdate {
    /// The update the attacker submits.
    pub update: Vec<f32>,
    /// The damping coefficient that produced it (1.0 = undamped poison,
    /// 0.0 = fully benign).
    pub strength: f32,
    /// Whether the attacker's local validator accepted the final update.
    pub self_accepted: bool,
}

/// Finds the strongest damped poisoned update that the attacker's own
/// validator accepts.
///
/// `accepts` is the attacker's local stand-in for the deployed validation
/// function: it receives a candidate *update* (to be applied to the
/// current global model) and returns whether the resulting model would
/// pass validation **on the attacker's data**.
///
/// The search first checks the undamped poison (`t = 1`); if rejected, it
/// binary-searches `t` for `iterations` steps, keeping the largest
/// accepted strength. If even `t = 0` (the benign update) is rejected,
/// the benign update is returned with `self_accepted = false` — the
/// attacker skips this round rather than get caught.
///
/// # Panics
///
/// Panics if the update lengths differ or `iterations == 0`.
///
/// # Example
///
/// ```
/// use baffle_attack::adaptive::dampen_until_accepted;
///
/// let benign = vec![0.0, 0.0];
/// let poison = vec![10.0, 0.0];
/// // Toy validator: accepts updates with small first coordinate.
/// let accepts = |u: &[f32]| u[0] <= 4.0;
/// let damped = dampen_until_accepted(&benign, &poison, accepts, 20);
/// assert!(damped.self_accepted);
/// assert!(damped.update[0] <= 4.0);
/// assert!(damped.update[0] > 3.5); // found the boundary
/// ```
pub fn dampen_until_accepted(
    benign: &[f32],
    poison: &[f32],
    mut accepts: impl FnMut(&[f32]) -> bool,
    iterations: usize,
) -> DampedUpdate {
    assert_eq!(
        benign.len(),
        poison.len(),
        "dampen_until_accepted: benign and poison updates differ in length ({} vs {})",
        benign.len(),
        poison.len()
    );
    assert!(iterations > 0, "dampen_until_accepted: need at least one iteration");

    if accepts(poison) {
        return DampedUpdate { update: poison.to_vec(), strength: 1.0, self_accepted: true };
    }
    if !accepts(benign) {
        // Even the benign update fails the attacker's local check: skip.
        return DampedUpdate { update: benign.to_vec(), strength: 0.0, self_accepted: false };
    }

    let mut lo = 0.0_f32; // known accepted
    let mut hi = 1.0_f32; // known rejected
    let mut best = benign.to_vec();
    for _ in 0..iterations {
        let mid = 0.5 * (lo + hi);
        let candidate = ops::lerp(benign, poison, mid);
        if accepts(&candidate) {
            lo = mid;
            best = candidate;
        } else {
            hi = mid;
        }
    }
    DampedUpdate { update: best, strength: lo, self_accepted: true }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_poison_accepted_returns_it_unchanged() {
        let d = dampen_until_accepted(&[0.0], &[5.0], |_| true, 10);
        assert_eq!(d.update, vec![5.0]);
        assert_eq!(d.strength, 1.0);
        assert!(d.self_accepted);
    }

    #[test]
    fn hopeless_attacker_falls_back_to_benign() {
        let d = dampen_until_accepted(&[1.0], &[5.0], |_| false, 10);
        assert_eq!(d.update, vec![1.0]);
        assert_eq!(d.strength, 0.0);
        assert!(!d.self_accepted);
    }

    #[test]
    fn binary_search_converges_to_the_boundary() {
        let benign = vec![0.0];
        let poison = vec![8.0];
        let d = dampen_until_accepted(&benign, &poison, |u| u[0] < 2.0, 30);
        assert!(d.self_accepted);
        assert!((d.update[0] - 2.0).abs() < 0.01, "boundary at {}", d.update[0]);
        assert!((d.strength - 0.25).abs() < 0.01);
    }

    #[test]
    fn damped_update_is_a_convex_combination() {
        let benign = vec![1.0, -1.0];
        let poison = vec![3.0, 5.0];
        let d = dampen_until_accepted(&benign, &poison, |u| u[1] < 2.0, 20);
        // Every coordinate lies between the benign and poison values.
        for ((&u, &b), &p) in d.update.iter().zip(&benign).zip(&poison) {
            let (lo, hi) = (b.min(p), b.max(p));
            assert!((lo..=hi).contains(&u), "{u} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn more_iterations_find_stronger_updates() {
        let benign = vec![0.0];
        let poison = vec![1.0];
        let coarse = dampen_until_accepted(&benign, &poison, |u| u[0] < 0.7, 2);
        let fine = dampen_until_accepted(&benign, &poison, |u| u[0] < 0.7, 25);
        assert!(fine.strength >= coarse.strength);
    }

    #[test]
    #[should_panic(expected = "differ in length")]
    fn mismatched_lengths_panic() {
        let _ = dampen_until_accepted(&[0.0], &[1.0, 2.0], |_| true, 5);
    }
}
