//! Local-training benchmarks: one client's epoch, one attack crafting
//! step, and one full honest FL round of the simulation substrate.

use baffle_attack::{BackdoorSpec, ModelReplacement};
use baffle_bench::cifar_fixture;
use baffle_fl::{train_clients_parallel, LocalTrainer};
use baffle_nn::Sgd;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_local_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_epoch");
    group.sample_size(30);
    for &samples in &[100usize, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &samples| {
            let fixture = cifar_fixture(samples, 1, 11);
            b.iter(|| {
                let mut m = fixture.model.clone();
                let mut opt = Sgd::new(0.1).with_momentum(0.9);
                let mut rng = StdRng::seed_from_u64(5);
                m.train_epoch(
                    black_box(fixture.data.features()),
                    black_box(fixture.data.labels()),
                    32,
                    &mut opt,
                    &mut rng,
                )
            });
        });
    }
    group.finish();
}

fn bench_parallel_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("honest_round_10_clients");
    group.sample_size(10);
    let fixture = cifar_fixture(2_000, 1, 13);
    let mut rng = StdRng::seed_from_u64(3);
    let shards: Vec<_> = (0..10).map(|_| fixture.data.split_random(&mut rng, 180).0).collect();
    let shard_refs: Vec<&_> = shards.iter().collect();
    let trainer = LocalTrainer::new(2, 0.1, 32);
    group.bench_function("train_clients_parallel", |b| {
        b.iter(|| train_clients_parallel(black_box(&fixture.model), &shard_refs, &trainer, 42));
    });
    group.finish();
}

fn bench_attack_crafting(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_replacement_crafting");
    group.sample_size(10);
    let fixture = cifar_fixture(500, 1, 17);
    let mut rng = StdRng::seed_from_u64(5);
    let backdoor = fixture.generator.generate_subgroup(&mut rng, 200, 1, 0);
    let attack = ModelReplacement::new(BackdoorSpec::semantic(1, 0, 2), 10.0);
    group.bench_function("poisoned_update", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            attack.poisoned_update(
                black_box(&fixture.model),
                black_box(&fixture.data),
                black_box(&backdoor),
                &mut rng,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_local_epoch, bench_parallel_round, bench_attack_crafting);
criterion_main!(benches);
