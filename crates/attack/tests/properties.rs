//! Property-based tests for the attack primitives.

use baffle_attack::adaptive::dampen_until_accepted;
use baffle_attack::BackdoorSpec;
use baffle_data::Dataset;
use baffle_tensor::Matrix;
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..6, 1usize..40).prop_flat_map(|(classes, n)| {
        (
            Just(classes),
            prop::collection::vec(0..classes, n..=n),
            prop::collection::vec(0u16..3, n..=n),
        )
            .prop_map(move |(classes, labels, tags)| {
                let x = Matrix::from_fn(labels.len(), 2, |r, c| (r + c) as f32);
                Dataset::with_subgroups(x, labels, tags, classes)
            })
    })
}

proptest! {
    /// Poisoning never changes features, length or class count — only
    /// labels, and only towards the target.
    #[test]
    fn poison_only_relabels_towards_target(data in dataset_strategy(), target in 0usize..6, source in 0usize..6) {
        prop_assume!(target < data.num_classes() && source < data.num_classes());
        prop_assume!(source != target);
        let spec = BackdoorSpec::label_flip(source, target);
        let poisoned = spec.poison(&data);
        prop_assert_eq!(poisoned.len(), data.len());
        prop_assert_eq!(poisoned.features(), data.features());
        prop_assert_eq!(poisoned.num_classes(), data.num_classes());
        for (i, (&orig, &new)) in data.labels().iter().zip(poisoned.labels()).enumerate() {
            if orig == source {
                prop_assert_eq!(new, target, "sample {} not flipped", i);
            } else {
                prop_assert_eq!(new, orig, "sample {} changed unexpectedly", i);
            }
        }
    }

    /// Poisoning is idempotent.
    #[test]
    fn poison_is_idempotent(data in dataset_strategy()) {
        prop_assume!(data.num_classes() >= 2);
        let spec = BackdoorSpec::label_flip(0, 1);
        let once = spec.poison(&data);
        let twice = spec.poison(&once);
        prop_assert_eq!(once, twice);
    }

    /// The semantic variant poisons a subset of what label-flip poisons.
    #[test]
    fn semantic_poisons_subset_of_label_flip(data in dataset_strategy()) {
        prop_assume!(data.num_classes() >= 2);
        let semantic = BackdoorSpec::semantic(0, 1, 1);
        let flip = BackdoorSpec::label_flip(0, 1);
        prop_assert!(semantic.count_in(&data) <= flip.count_in(&data));
    }

    /// The damped update is always a convex combination of benign and
    /// poison, and the returned strength is consistent with it.
    #[test]
    fn damped_update_is_convex(
        benign in prop::collection::vec(-5.0_f32..5.0, 4),
        poison in prop::collection::vec(-5.0_f32..5.0, 4),
        threshold in 0.0_f32..10.0,
    ) {
        let accepts = |u: &[f32]| baffle_tensor::ops::norm(u) <= threshold;
        let d = dampen_until_accepted(&benign, &poison, accepts, 12);
        prop_assert!((0.0..=1.0).contains(&d.strength));
        for ((&u, &b), &p) in d.update.iter().zip(&benign).zip(&poison) {
            let expect = (1.0 - d.strength) * b + d.strength * p;
            prop_assert!((u - expect).abs() < 1e-4, "{u} vs {expect}");
        }
        // If self-accepted, the final update indeed passes the check.
        if d.self_accepted {
            prop_assert!(accepts(&d.update));
        }
    }

    /// Damping strength is monotone in the acceptance threshold: a more
    /// permissive validator admits at least as strong an update.
    #[test]
    fn strength_monotone_in_threshold(
        poison in prop::collection::vec(-5.0_f32..5.0, 3),
        t1 in 0.1_f32..5.0,
        delta in 0.0_f32..5.0,
    ) {
        let benign = vec![0.0; 3];
        let accepts = |t: f32| move |u: &[f32]| baffle_tensor::ops::norm(u) <= t;
        let weak = dampen_until_accepted(&benign, &poison, accepts(t1), 16);
        let strong = dampen_until_accepted(&benign, &poison, accepts(t1 + delta), 16);
        prop_assert!(strong.strength >= weak.strength - 1e-4);
    }
}
