//! Demonstrates BaFFLe's compatibility with secure aggregation — the
//! paper's central deployment claim.
//!
//! The example masks every client update with pairwise PRG masks
//! (Bonawitz-style), shows that no individual update is visible in the
//! clear, that the masks cancel in the aggregate, and that the defense
//! reaches the *same decisions* because it only ever reads the aggregated
//! global model.
//!
//! ```sh
//! cargo run --release --example secure_aggregation
//! ```

use baffle::core::{Simulation, SimulationConfig};
use baffle::fl::secagg::SecAggSession;
use baffle::tensor::ops;

fn main() {
    // --- Part 1: the masking mechanics on raw update vectors. ----------
    let updates = [vec![0.5_f32, -1.0, 0.25], vec![-0.5, 0.5, 0.75], vec![1.0, 0.5, -1.0]];
    let session = SecAggSession::new(2024, updates.len(), updates[0].len());
    let masked: Vec<Vec<f32>> =
        updates.iter().enumerate().map(|(i, u)| session.mask(i, u)).collect();

    println!("client updates (plaintext) vs what the server receives (masked):");
    for (i, (u, m)) in updates.iter().zip(&masked).enumerate() {
        println!("  client {i}: {u:>28?}  ->  {m:?}");
    }
    let aggregate = session.aggregate(&masked);
    let expected = updates.iter().fold(vec![0.0; 3], |acc, u| ops::add(&acc, u));
    println!("aggregate of masked updates: {aggregate:?}");
    println!("sum of plaintext updates:    {expected:?}");
    let err = ops::distance(&aggregate, &expected);
    println!("masking residual (float error only): {err:.2e}");
    assert!(err < 1e-3);

    // --- Part 2: the defense behaves identically under secagg. ---------
    let mut plain_config = SimulationConfig::cifar_like_small(7);
    plain_config.use_secagg = false;
    let mut masked_config = plain_config.clone();
    masked_config.use_secagg = true;

    let plain = Simulation::new(plain_config).run();
    let secagg = Simulation::new(masked_config).run();

    println!("\nround-by-round decisions, plain vs secure aggregation:");
    let mut all_equal = true;
    for (p, s) in plain.records.iter().zip(&secagg.records) {
        let same = p.decision == s.decision;
        all_equal &= same;
        println!(
            "  round {:>2}: {:<9?} vs {:<9?} {}",
            p.round,
            p.decision,
            s.decision,
            if same { "" } else { "<-- differs" }
        );
    }
    assert!(all_equal, "secure aggregation changed defense decisions");
    println!("\nBaFFLe never needed an individual update: decisions are identical.");
}
