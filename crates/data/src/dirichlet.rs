//! Dirichlet sampling, built on the local [`crate::gamma`] sampler.

use crate::gamma::sample_gamma;
use rand::Rng;

/// Draws one sample from a symmetric `Dirichlet(alpha, …, alpha)` over
/// `dim` categories. The result is a probability vector (non-negative,
/// sums to 1).
///
/// The paper uses `alpha = 0.9` to emulate a non-IID assignment of class
/// data to clients (§VI-A).
///
/// # Panics
///
/// Panics if `dim == 0` or `alpha` is not finite and positive.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let p = baffle_data::dirichlet::sample_symmetric(&mut rng, 0.9, 10);
/// assert_eq!(p.len(), 10);
/// assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
pub fn sample_symmetric<R: Rng + ?Sized>(rng: &mut R, alpha: f64, dim: usize) -> Vec<f64> {
    assert!(dim > 0, "sample_symmetric: dim must be positive");
    sample(rng, &vec![alpha; dim])
}

/// Draws one sample from `Dirichlet(alpha)` with per-category
/// concentration parameters.
///
/// # Panics
///
/// Panics if `alpha` is empty or contains a non-positive or non-finite
/// entry.
pub fn sample<R: Rng + ?Sized>(rng: &mut R, alpha: &[f64]) -> Vec<f64> {
    assert!(!alpha.is_empty(), "dirichlet::sample: alpha must be non-empty");
    let mut draws: Vec<f64> = alpha.iter().map(|&a| sample_gamma(rng, a)).collect();
    let total: f64 = draws.iter().sum();
    if total <= 0.0 {
        // All gammas underflowed (tiny alpha); fall back to uniform.
        let u = 1.0 / alpha.len() as f64;
        return vec![u; alpha.len()];
    }
    for d in &mut draws {
        *d /= total;
    }
    draws
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sums_to_one_and_non_negative() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = sample_symmetric(&mut rng, 0.9, 7);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn mean_is_uniform_for_symmetric_alpha() {
        let mut rng = StdRng::seed_from_u64(2);
        let dim = 5;
        let n = 20_000;
        let mut acc = vec![0.0; dim];
        for _ in 0..n {
            let p = sample_symmetric(&mut rng, 0.9, dim);
            for (a, x) in acc.iter_mut().zip(&p) {
                *a += x;
            }
        }
        for a in &acc {
            let m = a / n as f64;
            assert!((m - 0.2).abs() < 0.01, "marginal mean = {m}");
        }
    }

    #[test]
    fn small_alpha_is_spikier_than_large_alpha() {
        // Smaller alpha concentrates mass on few categories; measure via
        // the mean max coordinate.
        let dim = 10;
        let n = 2000;
        let mean_max = |alpha: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n)
                .map(|_| sample_symmetric(&mut rng, alpha, dim).into_iter().fold(0.0_f64, f64::max))
                .sum::<f64>()
                / n as f64
        };
        let spiky = mean_max(0.1, 3);
        let flat = mean_max(10.0, 4);
        assert!(spiky > flat + 0.2, "spiky {spiky} vs flat {flat}");
    }

    #[test]
    fn asymmetric_alpha_biases_marginals() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 10_000;
        let mut acc = [0.0; 2];
        for _ in 0..n {
            let p = sample(&mut rng, &[8.0, 2.0]);
            acc[0] += p[0];
            acc[1] += p[1];
        }
        let m0 = acc[0] / n as f64;
        assert!((m0 - 0.8).abs() < 0.02, "marginal = {m0}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_alpha_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample(&mut rng, &[]);
    }
}
