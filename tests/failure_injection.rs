//! Failure-injection tests: the defense pipeline must degrade gracefully
//! under degenerate inputs — empty client shards, NaN-poisoned updates,
//! dropped validators and absurd parameters.

use baffle::core::{Simulation, SimulationConfig, ValidateError, ValidationConfig, Validator};
use baffle::data::{Dataset, SyntheticVision, VisionSpec};
use baffle::fl::{fedavg, LocalTrainer};
use baffle::nn::{Mlp, MlpSpec, Model, Sgd};
use baffle::tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_models(n: usize, seed: u64) -> (Vec<Mlp>, Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = SyntheticVision::new(&VisionSpec::new(4, 8, 2), &mut rng);
    let data = gen.generate(&mut rng, 600);
    let mut model = Mlp::new(&MlpSpec::new(8, &[12], 4), &mut rng);
    let mut opt = Sgd::new(0.05).with_momentum(0.9);
    let mut history = Vec::new();
    for _ in 0..n {
        model.train_epoch(data.features(), data.labels(), 32, &mut opt, &mut rng);
        history.push(model.clone());
    }
    (history, data)
}

#[test]
fn empty_client_shards_contribute_zero_updates() {
    let mut rng = StdRng::seed_from_u64(1);
    let gen = SyntheticVision::new(&VisionSpec::new(3, 6, 1), &mut rng);
    let data = gen.generate(&mut rng, 50);
    let model = Mlp::new(&MlpSpec::new(6, &[8], 3), &mut rng);
    let trainer = LocalTrainer::new(2, 0.1, 16);
    let empty = Dataset::empty(6, 3);
    let update = trainer.train_update(&model, &empty, &mut rng);
    assert!(update.iter().all(|&u| u == 0.0));
    // Aggregating only empty-shard updates leaves the model untouched.
    let out = fedavg(&model.params(), &[update], 10.0, 10);
    assert_eq!(out, model.params());
    drop(data);
}

#[test]
fn validator_survives_a_nan_poisoned_candidate() {
    let (history, data) = tiny_models(10, 2);
    let mut nan_model = history.last().unwrap().clone();
    let mut params = nan_model.params();
    params[0] = f32::NAN;
    params[10] = f32::INFINITY;
    nan_model.set_params(&params);

    let validator = Validator::new(ValidationConfig::new(8));
    // Must not panic; a NaN model garbles its own predictions, which the
    // misclassification analysis is free to flag.
    let verdict = validator.validate(&nan_model, &history, &data);
    assert!(verdict.is_ok(), "validator crashed on NaN model: {verdict:?}");
}

#[test]
fn validator_reports_unusable_inputs_as_typed_errors() {
    let (history, data) = tiny_models(10, 3);
    let validator = Validator::new(ValidationConfig::new(8));

    let empty = Dataset::empty(data.input_dim(), data.num_classes());
    assert_eq!(
        validator.validate(history.last().unwrap(), &history, &empty),
        Err(ValidateError::EmptyDataset)
    );
    assert!(matches!(
        validator.validate(history.last().unwrap(), &history[..2], &data),
        Err(ValidateError::NotEnoughHistory { got: 2, need: 4 })
    ));
}

#[test]
fn simulation_tolerates_clients_with_no_data() {
    // A heavily skewed split leaves several clients empty; training and
    // validation must proceed (empty validators abstain).
    let mut config = SimulationConfig::cifar_like_small(4);
    config.total_train = 300; // 20 clients, many will be near-empty
    config.poison_rounds = vec![];
    config.rounds = 6;
    let report = Simulation::new(config).run();
    assert_eq!(report.rounds_run, 6);
}

#[test]
fn single_sample_validation_set_does_not_crash() {
    let (history, data) = tiny_models(10, 5);
    let one = data.subset(&[0]);
    let validator = Validator::new(ValidationConfig::new(8));
    let verdict = validator.validate(history.last().unwrap(), &history, &one);
    assert!(verdict.is_ok());
}

#[test]
fn lossy_network_round_keeps_straggler_tolerance_under_membership_checks() {
    // A lossy deployment: messages vanish, so some sampled contributors
    // and validators never answer. The server's intake membership checks
    // must not mistake those stragglers for intruders — nothing here is
    // outside its sampled set, so every rejection counter must stay 0
    // while the round machinery keeps running on partial responses.
    use baffle::net::deployment::{Deployment, DeploymentConfig};
    use std::time::Duration;

    let mut config = DeploymentConfig::small(17);
    config.drop_prob = 0.2;
    config.rounds = 5;
    config.phase_timeout = Duration::from_millis(1500);

    let outcome = Deployment::run(config.clone());
    assert_eq!(outcome.rounds.len(), 5);
    assert!(outcome.messages_dropped > 0, "the lossy link must actually lose messages");
    let rejected: usize =
        outcome.rounds.iter().map(|r| r.rejected_submissions + r.rejected_votes).sum();
    assert_eq!(rejected, 0, "honest stragglers must never be counted as intake rejections");
    // Phase-ledger accounting: every sampled validator resolves to at
    // most one of {vote counted, rejected, abstained}; the rest are
    // silent stragglers (implicit accepts). Nothing can be counted
    // twice, so the per-round sum is bounded by the sample size.
    for r in &outcome.rounds {
        assert!(
            r.abstentions + r.votes_received + r.rejected_votes <= config.validators_per_round,
            "round {}: ledger over-counted ({} abstained + {} voted + {} rejected > {})",
            r.round,
            r.abstentions,
            r.votes_received,
            r.rejected_votes,
            config.validators_per_round,
        );
    }
}

#[test]
fn zero_boost_attack_config_is_rejected_loudly() {
    let result = std::panic::catch_unwind(|| {
        baffle::attack::ModelReplacement::new(baffle::attack::BackdoorSpec::label_flip(0, 1), -1.0)
    });
    assert!(result.is_err());
}

#[test]
fn matrix_kernel_rejects_malformed_shapes() {
    let result = std::panic::catch_unwind(|| {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        a.matmul(&b)
    });
    assert!(result.is_err());
}
