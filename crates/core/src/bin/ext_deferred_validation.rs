//! Extension experiment: the §VI-D communication optimisation —
//! validators coincide with the next round's contributors, who vote on
//! the previous model before training ("deferred validation").
//!
//! The optimisation saves one communication phase per round but buys it
//! with a **one-round detection lag**: a poisoned model is live until
//! the next round's vote rolls it back. This binary quantifies the trade:
//! detection rates and the backdoor's live exposure, standard vs
//! deferred.
//!
//! Run with `cargo run --release -p baffle-core --bin ext_deferred_validation`.

use baffle_core::exp::{cell, ExpArgs, Table};
use baffle_core::{Simulation, SimulationConfig};

fn main() {
    let args = ExpArgs::from_env();
    let mut table = Table::new(
        "Extension: standard vs deferred validation (§VI-D), CifarLike, ℓ=20, q=5",
        &["mode", "FP rate", "FN rate", "peak live backdoor acc", "final backdoor acc"],
    );
    for deferred in [false, true] {
        let mut fps = Vec::new();
        let mut fns = Vec::new();
        let mut peaks = Vec::new();
        let mut finals = Vec::new();
        for rep in 0..args.reps() {
            let mut config = SimulationConfig::cifar_like(args.seed + 1000 * rep as u64);
            config.deferred_validation = deferred;
            config.track_accuracy = true;
            if args.fast {
                config.rounds = 20;
                config.poison_rounds = vec![10, 15];
            }
            let mut sim = Simulation::new(config);
            let report = sim.run();
            fps.push(report.fp_rate());
            fns.push(report.fn_rate());
            let peak =
                report.records.iter().filter_map(|r| r.backdoor_accuracy).fold(0.0_f32, f32::max);
            peaks.push(peak as f64);
            finals.push(sim.backdoor_accuracy() as f64);
        }
        table.row(vec![
            if deferred { "deferred (§VI-D)".into() } else { "standard (Alg. 1)".to_string() },
            cell(&fps),
            cell(&fns),
            cell(&peaks),
            cell(&finals),
        ]);
    }
    table.emit(&args);
    println!(
        "deferred validation saves one message round but exposes each injection for\n\
         one round before rollback — visible as the peak live backdoor accuracy."
    );
}
