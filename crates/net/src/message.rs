//! Protocol messages.
//!
//! Every payload that represents a model crosses actor boundaries as
//! [`bytes::Bytes`] in the [`baffle_nn::wire`] `f32` format, so the
//! protocol layer never touches in-memory model structs — exactly how a
//! networked deployment would behave.

use baffle_attack::voting::Vote;
use baffle_fl::history_sync::ModelId;
use bytes::Bytes;

/// Identifies a protocol participant. The server is [`NodeId::SERVER`];
/// clients are numbered from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The coordinating server.
    pub const SERVER: NodeId = NodeId(u32::MAX);

    /// Whether this id denotes the server.
    pub fn is_server(self) -> bool {
        self == Self::SERVER
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_server() {
            write!(f, "server")
        } else {
            write!(f, "client-{}", self.0)
        }
    }
}

/// One accepted global model shipped as part of a history sync.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Monotone id assigned by the server at acceptance time.
    pub id: ModelId,
    /// Wire-encoded parameters.
    pub params: Bytes,
}

/// All messages of the BaFFLe protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Server → contributor: train on this global model for round
    /// `round` and reply with an [`Message::UpdateSubmission`].
    TrainRequest {
        /// Protocol round number.
        round: u64,
        /// Wire-encoded global model parameters.
        global: Bytes,
    },
    /// Contributor → server: the local update `U = L − G`.
    UpdateSubmission {
        /// Round this update belongs to.
        round: u64,
        /// Submitting client.
        from: NodeId,
        /// Wire-encoded update vector.
        update: Bytes,
    },
    /// Server → validator: validate this candidate model. Ships only the
    /// history entries the client has not yet cached (§VI-D incremental
    /// shipping).
    ValidateRequest {
        /// Round being validated.
        round: u64,
        /// Wire-encoded candidate model.
        candidate: Bytes,
        /// History entries missing from the client's cache, oldest
        /// first.
        history_delta: Vec<HistoryEntry>,
    },
    /// Validator → server: the verdict (`d_i` of Algorithm 1).
    VoteSubmission {
        /// Round being voted on.
        round: u64,
        /// Voting client.
        from: NodeId,
        /// The vote.
        vote: Vote,
    },
    /// Server → everyone involved in the round: the decision.
    RoundResult {
        /// The round.
        round: u64,
        /// Whether the update was integrated.
        accepted: bool,
    },
    /// Server → client: the protocol is over; the actor should exit.
    Shutdown,
}

impl Message {
    /// Short message-type label for logs and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::TrainRequest { .. } => "train-request",
            Message::UpdateSubmission { .. } => "update-submission",
            Message::ValidateRequest { .. } => "validate-request",
            Message::VoteSubmission { .. } => "vote-submission",
            Message::RoundResult { .. } => "round-result",
            Message::Shutdown => "shutdown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_server() {
        assert_eq!(NodeId(3).to_string(), "client-3");
        assert_eq!(NodeId::SERVER.to_string(), "server");
        assert!(NodeId::SERVER.is_server());
        assert!(!NodeId(0).is_server());
    }

    #[test]
    fn message_kinds_are_distinct() {
        let msgs = [
            Message::TrainRequest { round: 0, global: Bytes::new() },
            Message::UpdateSubmission { round: 0, from: NodeId(0), update: Bytes::new() },
            Message::ValidateRequest { round: 0, candidate: Bytes::new(), history_delta: vec![] },
            Message::VoteSubmission { round: 0, from: NodeId(0), vote: Vote::Accept },
            Message::RoundResult { round: 0, accepted: true },
            Message::Shutdown,
        ];
        let mut kinds: Vec<&str> = msgs.iter().map(|m| m.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), msgs.len());
    }
}
