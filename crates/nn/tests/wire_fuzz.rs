//! Fuzzing for the parameter codecs: arbitrary byte strings must decode
//! or error — never panic — and every single-bit flip on a valid buffer
//! must surface as an error, with flips in the checksummed region
//! reported as [`DecodeErrorKind::Corrupted`].

use baffle_nn::wire::{
    self, decode_any, decode_f32, decode_q4, decode_q8, decode_topk, encode_f32, encode_q4,
    encode_q8, encode_topk, DecodeErrorKind,
};
use proptest::prelude::*;

proptest! {
    /// No decoder panics on arbitrary input, including buffers that
    /// resemble headers with wild length fields.
    #[test]
    fn decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_f32(&bytes);
        let _ = decode_q8(&bytes);
        let _ = decode_q4(&bytes);
        let _ = decode_topk(&bytes);
        let _ = decode_any(&bytes);
    }

    /// Same, but with a valid magic spliced in front so the decoders get
    /// past the first gate and exercise their length/checksum paths.
    #[test]
    fn decoders_never_panic_with_valid_magic(tail in prop::collection::vec(any::<u8>(), 0..128)) {
        for enc in [
            encode_f32(&[1.0]),
            encode_q8(&[1.0]).unwrap(),
            encode_q4(&[1.0]).unwrap(),
            encode_topk(&[1.0], &[2.0], 1).unwrap(),
        ] {
            let mut bytes = enc[..4].to_vec();
            bytes.extend_from_slice(&tail);
            let _ = decode_any(&bytes);
            let _ = decode_f32(&bytes);
            let _ = decode_q8(&bytes);
            let _ = decode_q4(&bytes);
            let _ = decode_topk(&bytes);
        }
    }

    /// Every valid buffer decodes through `decode_any`, and every
    /// single-bit flip is rejected; flips past the magic+count prefix
    /// are reported as corruption for the self-contained codecs.
    #[test]
    fn single_bit_flips_are_detected(
        p in prop::collection::vec(-5.0_f32..5.0, 1..64),
        bit in 0usize..8,
        seed in any::<prop::sample::Index>(),
    ) {
        for enc in [encode_f32(&p), encode_q8(&p).unwrap(), encode_q4(&p).unwrap()] {
            prop_assert!(decode_any(&enc).is_ok());
            let at = seed.index(enc.len());
            let mut damaged = enc.to_vec();
            damaged[at] ^= 1 << bit;
            let err = decode_any(&damaged).expect_err("flip must not decode");
            if at >= 8 {
                // Checksum field or checksummed region.
                prop_assert_eq!(err.kind(), DecodeErrorKind::Corrupted, "flip at {}", at);
            }
        }
    }

    /// Bit flips on top-k deltas are likewise rejected (the k field at
    /// bytes 12..16 surfaces as a length mismatch, everything else past
    /// byte 8 as corruption).
    #[test]
    fn topk_bit_flips_are_detected(
        p in prop::collection::vec(-5.0_f32..5.0, 2..64),
        bit in 0usize..8,
        seed in any::<prop::sample::Index>(),
    ) {
        let target: Vec<f32> = p.iter().map(|&x| x * 1.1 + 0.05).collect();
        let enc = encode_topk(&p, &target, p.len() / 2).unwrap();
        prop_assert!(decode_topk(&enc).is_ok());
        let at = seed.index(enc.len());
        let mut damaged = enc.to_vec();
        damaged[at] ^= 1 << bit;
        prop_assert!(decode_topk(&damaged).is_err(), "flip at {} must not decode", at);
    }

    /// Quantised roundtrips stay within one quantisation step, and the
    /// sparse delta reconstructs retained coordinates exactly.
    #[test]
    fn lossy_roundtrip_error_is_bounded(p in prop::collection::vec(-8.0_f32..8.0, 1..128)) {
        let lo = p.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = p.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let q8 = decode_q8(&encode_q8(&p).unwrap()).unwrap();
        let step8 = ((hi - lo) / 254.0).max(1e-12);
        for (a, b) in p.iter().zip(&q8) {
            prop_assert!((a - b).abs() <= step8 + 1e-6);
        }
        let q4 = decode_q4(&encode_q4(&p).unwrap()).unwrap();
        let step4 = ((hi - lo) / 15.0).max(1e-12);
        for (a, b) in p.iter().zip(&q4) {
            prop_assert!((a - b).abs() <= step4 + 1e-6);
        }
        let base = vec![0.0; p.len()];
        let full = decode_topk(&encode_topk(&base, &p, p.len()).unwrap()).unwrap();
        let back = full.apply(&base).unwrap();
        for (a, b) in p.iter().zip(&back) {
            prop_assert!((a - b).abs() <= 1e-6);
        }
    }

    /// Truncations of a valid buffer never decode and never panic.
    #[test]
    fn truncations_never_decode(p in prop::collection::vec(-5.0_f32..5.0, 1..32)) {
        for enc in [encode_f32(&p), encode_q8(&p).unwrap(), encode_q4(&p).unwrap()] {
            for cut in 0..enc.len() {
                prop_assert!(decode_any(&enc[..cut]).is_err());
            }
        }
        let enc = encode_topk(&p, &p, 1).unwrap();
        for cut in 0..enc.len() {
            prop_assert!(decode_topk(&enc[..cut]).is_err());
        }
    }

    /// The codec selector's lossless fallback keeps non-finite vectors
    /// decodable bit-exactly whatever codec the profile picked.
    #[test]
    fn codec_fallback_roundtrips_non_finite(
        p in prop::collection::vec(prop_oneof![Just(f32::NAN), Just(f32::INFINITY), -2.0_f32..2.0], 0..32),
    ) {
        for codec in [wire::Codec::F32, wire::Codec::Q8, wire::Codec::Q4] {
            let back = decode_any(&codec.encode(&p)).unwrap();
            prop_assert_eq!(back.len(), p.len());
            if p.iter().any(|x| !x.is_finite()) {
                for (a, b) in p.iter().zip(&back) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }
}
