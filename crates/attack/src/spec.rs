//! Backdoor task specification.

use baffle_data::Dataset;
use serde::{Deserialize, Serialize};

/// The adversarial subtask of a backdoor attack (paper §III-A): a set of
/// backdoor instances and a target label `y_t`.
///
/// Two variants cover the paper's two instantiations:
///
/// - **Semantic** (CIFAR-10, §VI-A): backdoor instances are one semantic
///   subgroup of a source class — in this reproduction, a
///   `(class, subgroup)` pair of the synthetic generator.
/// - **Label-flip** (FEMNIST, §VI-A): backdoor instances are the whole
///   source class.
///
/// # Example
///
/// ```
/// use baffle_attack::BackdoorSpec;
/// let s = BackdoorSpec::semantic(2, 1, 7);
/// assert_eq!(s.source_class(), 2);
/// assert_eq!(s.subgroup(), Some(1));
/// assert_eq!(s.target_class(), 7);
/// assert!(BackdoorSpec::label_flip(0, 5).subgroup().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BackdoorSpec {
    source_class: usize,
    subgroup: Option<u16>,
    target_class: usize,
}

impl BackdoorSpec {
    /// A semantic backdoor: instances of `source_class` carrying the
    /// semantic feature `subgroup` should be classified as
    /// `target_class`.
    ///
    /// # Panics
    ///
    /// Panics if source and target coincide.
    pub fn semantic(source_class: usize, subgroup: u16, target_class: usize) -> Self {
        assert_ne!(source_class, target_class, "BackdoorSpec: source and target must differ");
        Self { source_class, subgroup: Some(subgroup), target_class }
    }

    /// A label-flip backdoor: every instance of `source_class` should be
    /// classified as `target_class`.
    ///
    /// # Panics
    ///
    /// Panics if source and target coincide.
    pub fn label_flip(source_class: usize, target_class: usize) -> Self {
        assert_ne!(source_class, target_class, "BackdoorSpec: source and target must differ");
        Self { source_class, subgroup: None, target_class }
    }

    /// The class whose (sub)population is attacked.
    pub fn source_class(&self) -> usize {
        self.source_class
    }

    /// The semantic subgroup, or `None` for a label-flip backdoor.
    pub fn subgroup(&self) -> Option<u16> {
        self.subgroup
    }

    /// The attacker's target label `y_t`.
    pub fn target_class(&self) -> usize {
        self.target_class
    }

    /// Whether a sample with the given label and subgroup tag is a
    /// backdoor instance.
    pub fn matches(&self, label: usize, subgroup: u16) -> bool {
        label == self.source_class && self.subgroup.is_none_or(|sg| sg == subgroup)
    }

    /// Returns a poisoned copy of `data`: every backdoor instance is
    /// relabelled to the target class (the data-poisoning step of model
    /// replacement).
    ///
    /// # Panics
    ///
    /// Panics if `target_class` is out of range for the dataset.
    pub fn poison(&self, data: &Dataset) -> Dataset {
        data.relabel(self.target_class, |_, y, sg| self.matches(y, sg))
    }

    /// Number of backdoor instances present in `data`.
    pub fn count_in(&self, data: &Dataset) -> usize {
        data.labels().iter().zip(data.subgroups()).filter(|(&y, &sg)| self.matches(y, sg)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baffle_tensor::Matrix;

    fn toy() -> Dataset {
        let x = Matrix::zeros(6, 1);
        Dataset::with_subgroups(x, vec![0, 0, 1, 1, 2, 0], vec![0, 1, 0, 1, 0, 1], 3)
    }

    #[test]
    fn semantic_matches_only_the_subgroup() {
        let s = BackdoorSpec::semantic(0, 1, 2);
        assert!(s.matches(0, 1));
        assert!(!s.matches(0, 0));
        assert!(!s.matches(1, 1));
    }

    #[test]
    fn label_flip_matches_whole_class() {
        let s = BackdoorSpec::label_flip(1, 0);
        assert!(s.matches(1, 0));
        assert!(s.matches(1, 7));
        assert!(!s.matches(0, 0));
    }

    #[test]
    fn poison_relabels_semantic_instances() {
        let s = BackdoorSpec::semantic(0, 1, 2);
        let p = s.poison(&toy());
        // Samples 1 and 5 are class 0 subgroup 1.
        assert_eq!(p.labels(), &[0, 2, 1, 1, 2, 2]);
    }

    #[test]
    fn poison_relabels_whole_class_for_label_flip() {
        let s = BackdoorSpec::label_flip(0, 1);
        let p = s.poison(&toy());
        assert_eq!(p.labels(), &[1, 1, 1, 1, 2, 1]);
    }

    #[test]
    fn count_in_counts_backdoor_instances() {
        let toy = toy();
        assert_eq!(BackdoorSpec::semantic(0, 1, 2).count_in(&toy), 2);
        assert_eq!(BackdoorSpec::label_flip(0, 2).count_in(&toy), 3);
        assert_eq!(BackdoorSpec::semantic(2, 1, 0).count_in(&toy), 0);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn source_equals_target_panics() {
        let _ = BackdoorSpec::label_flip(3, 3);
    }
}
