//! Fitted LOF reference model.

use crate::LofError;

/// A reference set with precomputed k-distances and local reachability
/// densities, ready to score queries.
///
/// Fit once, score many: Algorithm 2 scores each window position against
/// the same sliding reference window, so precomputing the reference-side
/// quantities avoids quadratic rework.
///
/// # Example
///
/// ```
/// use baffle_lof::LofModel;
///
/// let refs: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32, 0.0]).collect();
/// let model = LofModel::fit(refs, 2)?;
/// let score = model.score(&[3.5, 0.0])?;
/// assert!(score < 1.5); // on the line: an inlier
/// # Ok::<(), baffle_lof::LofError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LofModel {
    points: Vec<Vec<f32>>,
    k: usize,
    /// `kdist[i]`: distance from point `i` to its k-th nearest reference.
    kdist: Vec<f64>,
    /// `lrd[i]`: local reachability density of point `i` among the others.
    lrd: Vec<f64>,
}

impl LofModel {
    /// Fits the reference-side LOF quantities.
    ///
    /// `k` is clamped to `points.len() - 1` (each point's neighbourhood
    /// excludes itself).
    ///
    /// # Errors
    ///
    /// Returns [`LofError::NotEnoughReferences`] for fewer than two
    /// points, [`LofError::ZeroK`] for `k == 0`, and
    /// [`LofError::DimensionMismatch`] if the points have inconsistent
    /// dimensions.
    pub fn fit(points: Vec<Vec<f32>>, k: usize) -> Result<Self, LofError> {
        if points.len() < 2 {
            return Err(LofError::NotEnoughReferences { got: points.len() });
        }
        if k == 0 {
            return Err(LofError::ZeroK);
        }
        let dim = points[0].len();
        for p in &points[1..] {
            if p.len() != dim {
                return Err(LofError::DimensionMismatch { query: p.len(), reference: dim });
            }
        }
        let k = k.min(points.len() - 1);
        let n = points.len();

        // Pairwise distances and per-point neighbour lists.
        let mut neighbors: Vec<Vec<(f64, usize)>> = vec![Vec::with_capacity(n - 1); n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = euclidean(&points[i], &points[j]);
                neighbors[i].push((d, j));
                neighbors[j].push((d, i));
            }
        }
        for nb in &mut neighbors {
            nb.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            nb.truncate(k);
        }
        let kdist: Vec<f64> = neighbors.iter().map(|nb| nb[k - 1].0).collect();

        // Local reachability density of each reference point.
        let lrd: Vec<f64> = (0..n)
            .map(|i| {
                let sum: f64 = neighbors[i].iter().map(|&(d, j)| d.max(kdist[j])).sum();
                if sum <= 0.0 {
                    f64::INFINITY // duplicates: infinitely dense
                } else {
                    k as f64 / sum
                }
            })
            .collect();

        Ok(Self { points, k, kdist, lrd })
    }

    /// The neighbourhood size actually used (after clamping).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of reference points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the model has no reference points (never true for a fitted
    /// model, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Scores a query point: `LOF_k(query; refs)`.
    ///
    /// Values near 1 mean the query is as densely clustered as its
    /// neighbours; values substantially above 1 indicate an outlier. A
    /// query duplicating reference points scores 1 (equally dense by
    /// convention).
    ///
    /// # Errors
    ///
    /// Returns [`LofError::DimensionMismatch`] if the query has the wrong
    /// dimensionality.
    pub fn score(&self, query: &[f32]) -> Result<f64, LofError> {
        let dim = self.points[0].len();
        if query.len() != dim {
            return Err(LofError::DimensionMismatch { query: query.len(), reference: dim });
        }
        // k nearest references to the query.
        let mut dists: Vec<(f64, usize)> =
            self.points.iter().enumerate().map(|(j, p)| (euclidean(query, p), j)).collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        dists.truncate(self.k);

        // Local reachability density of the query.
        let reach_sum: f64 = dists.iter().map(|&(d, j)| d.max(self.kdist[j])).sum();
        let lrd_query = if reach_sum <= 0.0 { f64::INFINITY } else { self.k as f64 / reach_sum };

        // LOF = mean(lrd(neighbour)) / lrd(query).
        let mean_lrd: f64 = dists.iter().map(|&(_, j)| self.lrd[j]).sum::<f64>() / self.k as f64;
        let score = if lrd_query.is_infinite() {
            // Query coincides with duplicated references: equally dense.
            1.0
        } else if mean_lrd.is_infinite() {
            // Neighbours are duplicates but the query is not among them:
            // maximally outlying.
            f64::INFINITY
        } else {
            mean_lrd / lrd_query
        };
        Ok(score)
    }
}

fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_cluster() -> Vec<Vec<f32>> {
        // 3x3 unit grid: uniformly dense.
        let mut pts = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                pts.push(vec![i as f32, j as f32]);
            }
        }
        pts
    }

    #[test]
    fn inlier_scores_near_one() {
        let model = LofModel::fit(grid_cluster(), 3).unwrap();
        let s = model.score(&[1.0, 1.5]).unwrap();
        assert!((0.5..1.5).contains(&s), "inlier LOF = {s}");
    }

    #[test]
    fn far_outlier_scores_high() {
        let model = LofModel::fit(grid_cluster(), 3).unwrap();
        let s = model.score(&[50.0, 50.0]).unwrap();
        assert!(s > 10.0, "outlier LOF = {s}");
    }

    #[test]
    fn lof_grows_with_distance() {
        let model = LofModel::fit(grid_cluster(), 3).unwrap();
        let near = model.score(&[1.0, 4.0]).unwrap();
        let far = model.score(&[1.0, 10.0]).unwrap();
        assert!(far > near, "far {far} !> near {near}");
    }

    #[test]
    fn reference_duplicate_query_scores_one() {
        let refs = vec![vec![1.0, 1.0]; 5];
        let model = LofModel::fit(refs, 2).unwrap();
        assert_eq!(model.score(&[1.0, 1.0]).unwrap(), 1.0);
    }

    #[test]
    fn query_off_duplicate_cluster_is_infinite() {
        let refs = vec![vec![0.0, 0.0]; 5];
        let model = LofModel::fit(refs, 2).unwrap();
        assert!(model.score(&[1.0, 0.0]).unwrap().is_infinite());
    }

    #[test]
    fn k_is_clamped_to_len_minus_one() {
        let refs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let model = LofModel::fit(refs, 100).unwrap();
        assert_eq!(model.k(), 2);
        assert_eq!(model.len(), 3);
    }

    #[test]
    fn fit_rejects_inconsistent_dimensions() {
        let refs = vec![vec![0.0, 1.0], vec![1.0]];
        assert!(matches!(LofModel::fit(refs, 1), Err(LofError::DimensionMismatch { .. })));
    }

    #[test]
    fn score_rejects_wrong_dimension() {
        let model = LofModel::fit(grid_cluster(), 2).unwrap();
        assert!(matches!(model.score(&[0.0]), Err(LofError::DimensionMismatch { .. })));
    }

    #[test]
    fn fit_rejects_zero_k() {
        assert!(matches!(LofModel::fit(grid_cluster(), 0), Err(LofError::ZeroK)));
    }

    #[test]
    fn two_point_reference_set_works() {
        let model = LofModel::fit(vec![vec![0.0], vec![1.0]], 1).unwrap();
        let s = model.score(&[0.5]).unwrap();
        assert!(s.is_finite() && s > 0.0);
    }

    #[test]
    fn scores_are_scale_invariant() {
        // LOF is a ratio of densities, so uniformly scaling all points
        // (including the query) must not change the score.
        let refs = grid_cluster();
        let scaled: Vec<Vec<f32>> =
            refs.iter().map(|p| p.iter().map(|&x| x * 10.0).collect()).collect();
        let m1 = LofModel::fit(refs, 3).unwrap();
        let m2 = LofModel::fit(scaled, 3).unwrap();
        let s1 = m1.score(&[5.0, 5.0]).unwrap();
        let s2 = m2.score(&[50.0, 50.0]).unwrap();
        assert!((s1 - s2).abs() < 1e-9, "{s1} vs {s2}");
    }
}
