//! Quick head-to-head: plain FedAvg vs a Byzantine-robust aggregator vs
//! BaFFLe, against the same boosted model-replacement backdoor.
//!
//! Demonstrates the paper's positioning in one run: robust aggregation
//! can stop the attack but must inspect individual updates (breaking
//! secure aggregation); BaFFLe stops it while seeing only the aggregate.
//!
//! ```sh
//! cargo run --release --example baseline_showdown
//! ```

use baffle::baselines::harness::{run_with_boost, ComparisonConfig, DefenseUnderTest};

fn main() {
    let config = ComparisonConfig {
        seed: 5,
        rounds: 10,
        poison_rounds: vec![5],
        num_clients: 24,
        clients_per_round: 6,
        total_train: 4_000,
    };
    let boost = config.clients_per_round as f32; // full replacement under averaging

    println!("one boosted (γ = {boost}) semantic-backdoor injection at round 5\n");
    println!(
        "{:<18} {:>8} {:>10} {:>12} {:>12}",
        "defense", "secagg?", "main acc", "peak bd acc", "final bd acc"
    );
    for defense in [
        DefenseUnderTest::Mean,
        DefenseUnderTest::Median,
        DefenseUnderTest::Baffle { lookback: 8, quorum: 4 },
    ] {
        let out = run_with_boost(&defense, &config, boost);
        println!(
            "{:<18} {:>8} {:>10.3} {:>12.3} {:>12.3}",
            defense.name(),
            if defense.needs_individual_updates() { "no" } else { "yes" },
            out.final_main_accuracy,
            out.peak_backdoor_accuracy,
            out.final_backdoor_accuracy,
        );
    }
    println!(
        "\nfedavg admits the backdoor; the median blocks it but reads raw updates;\n\
         BaFFLe blocks it from the aggregate alone."
    );
}
