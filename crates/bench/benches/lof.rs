//! LOF benchmarks: fitting the reference model and scoring queries at the
//! window sizes Algorithm 2 uses (ℓ ∈ {10, 20, 30} variation vectors in
//! 2·|Y| dimensions).

use baffle_lof::LofModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn refs(n: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..n).map(|i| (0..dim).map(|d| ((i * 31 + d * 7) % 97) as f32 * 0.01).collect()).collect()
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("lof_fit");
    for &(n, dim) in &[(10usize, 20usize), (20, 20), (30, 20), (30, 124)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_d{dim}")),
            &(n, dim),
            |b, &(n, dim)| {
                let points = refs(n, dim);
                b.iter(|| LofModel::fit(black_box(points.clone()), n / 2).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_score(c: &mut Criterion) {
    let mut group = c.benchmark_group("lof_score");
    for &(n, dim) in &[(10usize, 20usize), (20, 20), (30, 20), (30, 124)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_d{dim}")),
            &(n, dim),
            |b, &(n, dim)| {
                let model = LofModel::fit(refs(n, dim), n / 2).unwrap();
                let query = vec![0.5_f32; dim];
                b.iter(|| model.score(black_box(&query)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_score);
criterion_main!(benches);
