//! Per-phase responder accounting — the **phase ledger**.
//!
//! Both server collection phases (updates, votes) wait on a sampled set
//! of nodes. The paper's footnote 1 tolerates nodes that say *nothing*
//! (missing votes are implicit accepts), but a node that responds
//! *badly* — a malformed update, a spoofed sender, an explicit
//! [`Message::Abstain`](crate::message::Message::Abstain) — must not
//! keep the server waiting for it: it has been heard from. The ledger
//! tracks every expected responder through exactly one transition out of
//! [`ResponderState::Pending`], and the collection loops exit as soon as
//! nobody is pending, instead of burning the full phase timeout.

use crate::message::NodeId;
use std::collections::HashMap;

/// What the server knows about one expected responder in one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponderState {
    /// Nothing heard yet — the phase must keep waiting (until timeout).
    Pending,
    /// A usable response was counted (update accepted, vote counted).
    Answered,
    /// The node responded but the response was discarded at intake
    /// (malformed payload, spoofed sender). The node is accounted for:
    /// waiting longer cannot change its contribution.
    Rejected,
    /// The node explicitly declared it cannot act this round. Treated as
    /// the paper's implicit accept in the vote phase.
    Abstained,
}

/// Tracks the per-phase state machine of every expected responder.
///
/// States move `Pending → {Answered, Rejected, Abstained}` exactly once;
/// the first transition wins and later marks are ignored (first-wins
/// intake). Nodes outside the expected set are never tracked — marking
/// them is a no-op, so rogue traffic cannot terminate a phase.
#[derive(Debug, Clone)]
pub struct PhaseLedger {
    states: HashMap<NodeId, ResponderState>,
    pending: usize,
}

impl PhaseLedger {
    /// Creates a ledger with every expected responder `Pending`.
    pub fn new(expected: impl IntoIterator<Item = NodeId>) -> Self {
        let states: HashMap<NodeId, ResponderState> =
            expected.into_iter().map(|id| (id, ResponderState::Pending)).collect();
        let pending = states.len();
        Self { states, pending }
    }

    /// Whether `id` is one of the phase's expected responders.
    pub fn contains(&self, id: NodeId) -> bool {
        self.states.contains_key(&id)
    }

    /// The state of `id`, or `None` for nodes outside the expected set.
    pub fn state(&self, id: NodeId) -> Option<ResponderState> {
        self.states.get(&id).copied()
    }

    /// Whether `id` is expected and still unheard-from.
    pub fn is_pending(&self, id: NodeId) -> bool {
        self.state(id) == Some(ResponderState::Pending)
    }

    /// Marks a counted response. Returns `true` iff this was `id`'s
    /// first transition (i.e. the response should be used).
    pub fn mark_answered(&mut self, id: NodeId) -> bool {
        self.transition(id, ResponderState::Answered)
    }

    /// Marks a response discarded at intake. No-op (returns `false`) for
    /// unknown or already-settled responders.
    pub fn mark_rejected(&mut self, id: NodeId) -> bool {
        self.transition(id, ResponderState::Rejected)
    }

    /// Marks an explicit abstention. Returns `true` iff it settled a
    /// pending responder (i.e. the abstention should be counted).
    pub fn mark_abstained(&mut self, id: NodeId) -> bool {
        self.transition(id, ResponderState::Abstained)
    }

    fn transition(&mut self, id: NodeId, to: ResponderState) -> bool {
        match self.states.get_mut(&id) {
            Some(s @ ResponderState::Pending) => {
                *s = to;
                self.pending -= 1;
                true
            }
            _ => false,
        }
    }

    /// Number of responders still pending.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The phase's early-exit condition: every expected responder is
    /// accounted for (answered, rejected or abstained) — waiting longer
    /// cannot produce new information.
    pub fn all_accounted(&self) -> bool {
        self.pending == 0
    }

    fn count(&self, state: ResponderState) -> usize {
        self.states.values().filter(|&&s| s == state).count()
    }

    /// Responders whose response was counted.
    pub fn answered(&self) -> usize {
        self.count(ResponderState::Answered)
    }

    /// Responders whose response was discarded at intake.
    pub fn rejected(&self) -> usize {
        self.count(ResponderState::Rejected)
    }

    /// Responders that explicitly abstained.
    pub fn abstained(&self) -> usize {
        self.count(ResponderState::Abstained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> impl Iterator<Item = NodeId> + '_ {
        v.iter().map(|&i| NodeId(i))
    }

    #[test]
    fn empty_ledger_is_immediately_accounted() {
        let ledger = PhaseLedger::new(ids(&[]));
        assert!(ledger.all_accounted());
        assert_eq!(ledger.pending(), 0);
    }

    #[test]
    fn all_states_count_toward_accounted() {
        let mut ledger = PhaseLedger::new(ids(&[0, 1, 2]));
        assert!(!ledger.all_accounted());
        assert!(ledger.mark_answered(NodeId(0)));
        assert!(ledger.mark_rejected(NodeId(1)));
        assert!(!ledger.all_accounted());
        assert!(ledger.mark_abstained(NodeId(2)));
        assert!(ledger.all_accounted());
        assert_eq!((ledger.answered(), ledger.rejected(), ledger.abstained()), (1, 1, 1));
    }

    #[test]
    fn first_transition_wins() {
        let mut ledger = PhaseLedger::new(ids(&[0]));
        assert!(ledger.mark_answered(NodeId(0)));
        // A duplicate answer, a late rejection and a late abstention all
        // bounce off the settled state.
        assert!(!ledger.mark_answered(NodeId(0)));
        assert!(!ledger.mark_rejected(NodeId(0)));
        assert!(!ledger.mark_abstained(NodeId(0)));
        assert_eq!(ledger.state(NodeId(0)), Some(ResponderState::Answered));
        assert_eq!(ledger.answered(), 1);
    }

    #[test]
    fn rejected_responder_cannot_answer_later() {
        let mut ledger = PhaseLedger::new(ids(&[0]));
        assert!(ledger.mark_rejected(NodeId(0)));
        assert!(!ledger.mark_answered(NodeId(0)));
        assert_eq!(ledger.state(NodeId(0)), Some(ResponderState::Rejected));
    }

    #[test]
    fn outsiders_are_never_tracked() {
        let mut ledger = PhaseLedger::new(ids(&[0, 1]));
        assert!(!ledger.contains(NodeId(9)));
        assert!(!ledger.mark_answered(NodeId(9)));
        assert!(!ledger.mark_rejected(NodeId(9)));
        assert!(!ledger.mark_abstained(NodeId(9)));
        assert_eq!(ledger.state(NodeId(9)), None);
        assert_eq!(ledger.pending(), 2, "rogue traffic must not drain the phase");
    }

    #[test]
    fn is_pending_tracks_transitions() {
        let mut ledger = PhaseLedger::new(ids(&[3]));
        assert!(ledger.is_pending(NodeId(3)));
        ledger.mark_abstained(NodeId(3));
        assert!(!ledger.is_pending(NodeId(3)));
        assert!(!ledger.is_pending(NodeId(4)));
    }
}
