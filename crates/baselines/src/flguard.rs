//! Simplified FLGuard/FLAME-style defense (Nguyen et al., cited as [20]
//! in the paper).
//!
//! The published system is a two-layer defense: (1) cluster the round's
//! updates by pairwise cosine distance and admit only the largest,
//! mutually-similar group (model filtering); (2) clip the admitted
//! updates to a common norm and add Gaussian noise (backdoor smoothing).
//! The paper's §VII critique: the private version "introduces
//! considerable and costly changes to the FL process", and like all
//! update-inspection defenses it is incompatible with secure
//! aggregation.
//!
//! This implementation uses single-linkage agglomerative clustering with
//! a median-distance cutoff in place of HDBSCAN — the same admit-the-
//! dense-majority behaviour without an extra dependency.

use crate::{check_updates, BaselineError};
use baffle_tensor::ops;
use rand::Rng;

/// The FLGuard-style aggregate: filtering + clipping + noising.
#[derive(Debug, Clone, PartialEq)]
pub struct FlGuard {
    noise_factor: f32,
}

/// Outcome of one FLGuard aggregation, exposing which updates were
/// admitted (C-INTERMEDIATE).
#[derive(Debug, Clone, PartialEq)]
pub struct FlGuardOutcome {
    /// The aggregated (filtered, clipped, noised) update.
    pub aggregate: Vec<f32>,
    /// Indices of the updates admitted by the clustering filter.
    pub admitted: Vec<usize>,
    /// The clipping bound applied (median admitted norm).
    pub clip_bound: f32,
}

impl Default for FlGuard {
    fn default() -> Self {
        Self::new(0.01)
    }
}

impl FlGuard {
    /// Creates the defense; `noise_factor` scales the Gaussian noise
    /// relative to the clipping bound (the λ of FLAME's DP analysis).
    ///
    /// # Panics
    ///
    /// Panics if `noise_factor` is negative or not finite.
    pub fn new(noise_factor: f32) -> Self {
        assert!(
            noise_factor.is_finite() && noise_factor >= 0.0,
            "FlGuard: noise_factor must be non-negative"
        );
        Self { noise_factor }
    }

    /// Filters, clips, noises and averages the round's updates.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError`] on empty or ragged input.
    pub fn aggregate<R: Rng + ?Sized>(
        &self,
        updates: &[Vec<f32>],
        rng: &mut R,
    ) -> Result<FlGuardOutcome, BaselineError> {
        let dim = check_updates(updates)?;
        let n = updates.len();

        let admitted =
            if n <= 2 { (0..n).collect::<Vec<_>>() } else { largest_cosine_cluster(updates) };

        // Clip admitted updates to the median admitted norm.
        let mut norms: Vec<f32> = admitted.iter().map(|&i| ops::norm(&updates[i])).collect();
        norms.sort_by(f32::total_cmp);
        let clip_bound = norms[norms.len() / 2].max(f32::MIN_POSITIVE);

        let mut acc = vec![0.0_f32; dim];
        for &i in &admitted {
            let mut u = updates[i].clone();
            ops::clip_norm(&mut u, clip_bound);
            ops::axpy(1.0 / admitted.len() as f32, &u, &mut acc);
        }
        if self.noise_factor > 0.0 {
            let sigma = self.noise_factor * clip_bound / (dim as f32).sqrt();
            for a in &mut acc {
                *a += sigma * baffle_tensor::rng::standard_normal(rng);
            }
        }
        Ok(FlGuardOutcome { aggregate: acc, admitted, clip_bound })
    }
}

/// Single-linkage clustering over pairwise cosine distances, merging in
/// ascending distance order until a **majority** cluster (size ≥ n/2+1)
/// emerges — FLAME's "admit the dense majority" behaviour. Edges within
/// a 2× slack band of the majority-forming distance are also merged, so
/// the full dense group is admitted rather than a minimal majority.
fn largest_cosine_cluster(updates: &[Vec<f32>]) -> Vec<usize> {
    let n = updates.len();
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((1.0 - cosine(&updates[i], &updates[j]), i, j));
        }
    }
    edges.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut parent: Vec<usize> = (0..n).collect();
    let mut size = vec![1usize; n];
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    let majority = n / 2 + 1;
    let mut majority_root = None;
    let mut cutoff = f32::INFINITY;
    for &(d, i, j) in &edges {
        if d > cutoff {
            break;
        }
        let (a, b) = (find(&mut parent, i), find(&mut parent, j));
        if a != b {
            let (keep, merge) = (a.min(b), a.max(b));
            parent[merge] = keep;
            size[keep] += size[merge];
            if majority_root.is_none() && size[keep] >= majority {
                majority_root = Some(keep);
                // Slack band: admit everything about as close as the
                // majority-forming merge (at least an absolute floor so
                // exact-duplicate clusters still extend).
                cutoff = (2.0 * d).max(1e-4);
            }
        }
    }
    let root = match majority_root {
        Some(r) => find(&mut parent, r),
        // No majority ever formed (degenerate geometry): fall back to
        // the largest cluster found.
        None => {
            let mut best = 0;
            for i in 0..n {
                let r = find(&mut parent, i);
                if size[r] > size[find(&mut parent, best)] {
                    best = r;
                }
            }
            find(&mut parent, best)
        }
    };
    (0..n).filter(|&i| find(&mut parent, i) == root).collect()
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = ops::norm(a);
    let nb = ops::norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    ops::dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn honest_cluster(n: usize) -> Vec<Vec<f32>> {
        // Similar directions, moderate norms.
        (0..n).map(|i| vec![1.0 + 0.05 * i as f32, 0.5 - 0.02 * i as f32, 0.1]).collect()
    }

    #[test]
    fn admits_everything_when_all_similar() {
        let mut rng = StdRng::seed_from_u64(1);
        let ups = honest_cluster(6);
        let out = FlGuard::new(0.0).aggregate(&ups, &mut rng).unwrap();
        assert_eq!(out.admitted.len(), 6);
    }

    #[test]
    fn filters_an_opposite_direction_minority() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ups = honest_cluster(6);
        ups.push(vec![-5.0, -3.0, 8.0]); // adversarial direction
        let out = FlGuard::new(0.0).aggregate(&ups, &mut rng).unwrap();
        assert!(!out.admitted.contains(&6), "poisoned direction admitted: {:?}", out.admitted);
    }

    #[test]
    fn clipping_bounds_a_boosted_same_direction_update() {
        // A boosted update in the honest direction survives the cosine
        // filter but is clipped to the median norm.
        let mut rng = StdRng::seed_from_u64(3);
        let mut ups = honest_cluster(6);
        ups.push(ops::scale(50.0, &ups[0].clone()));
        let out = FlGuard::new(0.0).aggregate(&ups, &mut rng).unwrap();
        let agg_norm = ops::norm(&out.aggregate);
        assert!(agg_norm <= out.clip_bound * 1.01, "aggregate norm {agg_norm} exceeds clip");
    }

    #[test]
    fn noise_is_added_when_configured() {
        let mut rng = StdRng::seed_from_u64(4);
        let ups = vec![vec![0.0; 16]; 4];
        let out = FlGuard::new(1.0).aggregate(&ups, &mut rng).unwrap();
        // All-zero updates: any non-zero output is noise.
        assert!(out.aggregate.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn two_updates_are_always_admitted() {
        let mut rng = StdRng::seed_from_u64(5);
        let ups = vec![vec![1.0, 0.0], vec![-1.0, 0.0]];
        let out = FlGuard::default().aggregate(&ups, &mut rng).unwrap();
        assert_eq!(out.admitted, vec![0, 1]);
    }

    #[test]
    fn empty_input_errors() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(FlGuard::default().aggregate(&[], &mut rng).is_err());
    }

    #[test]
    fn largest_cluster_prefers_majority() {
        // 4 similar + 3 similar-but-different: majority wins.
        let mut ups = honest_cluster(4);
        ups.push(vec![0.0, 0.0, 5.0]);
        ups.push(vec![0.0, 0.1, 5.0]);
        ups.push(vec![0.1, 0.0, 5.0]);
        let admitted = largest_cosine_cluster(&ups);
        assert_eq!(admitted.len(), 4);
        assert!(admitted.iter().all(|&i| i < 4));
    }
}
