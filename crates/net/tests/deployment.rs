//! Integration tests for the threaded protocol deployment.

use baffle_net::deployment::{Deployment, DeploymentConfig};
use std::time::Duration;

#[test]
fn small_deployment_completes_all_rounds() {
    let config = DeploymentConfig::small(1);
    let phase_timeout = config.phase_timeout;
    let outcome = Deployment::run(config);
    assert_eq!(outcome.rounds.len(), 6);
    assert!(outcome.messages_sent > 0);
    assert_eq!(outcome.messages_dropped, 0);
    // Training proceeded: the final model is usable.
    assert!(outcome.final_main_accuracy > 0.5, "{}", outcome.final_main_accuracy);
    // Phase-ledger liveness accounting is populated end-to-end.
    for r in &outcome.rounds {
        assert!(!r.quorum_clamped, "round {}: q=2 over 5 voters cannot clamp", r.round);
        assert!(r.update_phase <= phase_timeout);
        assert!(r.vote_phase <= phase_timeout);
        assert!(r.vote_phase > std::time::Duration::ZERO, "vote phase must have run");
    }
    // Round 1 ships a single-model history — far below the VALIDATE
    // minimum — so every validator abstains (explicit implicit-accept)
    // rather than going silent and stalling the vote phase.
    assert_eq!(outcome.rounds[0].abstentions, 4, "round 1 validators must abstain");
    assert_eq!(outcome.rounds[0].votes_received, 0);
    assert!(outcome.rounds[0].accepted, "abstentions are implicit accepts");
    // On a lossless network, no phase should ever wait out its timeout:
    // every sampled node answers or abstains, and the ledger exits early.
    let slowest = outcome.rounds.iter().map(|r| r.update_phase.max(r.vote_phase)).max().unwrap();
    assert!(slowest < phase_timeout, "a phase burned its full timeout: {slowest:?}");
}

#[test]
fn attacker_rounds_are_rejected_once_history_matures() {
    // Longer run: the attacker (client 0) poisons every round it is
    // selected for. Once validators have cached enough history, those
    // rounds must be rejected — and the backdoor must not persist.
    let mut config = DeploymentConfig::small(2);
    config.rounds = 14;
    let outcome = Deployment::run(config);
    assert_eq!(outcome.rounds.len(), 14);
    let rejected = outcome.rounds.iter().filter(|r| !r.accepted).count();
    assert!(rejected >= 1, "no round was ever rejected");
    assert!(
        outcome.final_backdoor_accuracy < 0.5,
        "backdoor persisted: {}",
        outcome.final_backdoor_accuracy
    );
}

#[test]
fn clean_deployment_accepts_most_rounds() {
    let mut config = DeploymentConfig::small(3);
    config.malicious_clients = 0;
    config.rounds = 10;
    let outcome = Deployment::run(config);
    let accepted = outcome.rounds.iter().filter(|r| r.accepted).count();
    assert!(accepted >= 8, "clean deployment rejected too much: {accepted}/10");
    assert!(outcome.final_backdoor_accuracy < 0.3);
}

#[test]
fn lossy_network_does_not_stall_the_protocol() {
    let mut config = DeploymentConfig::small(4);
    config.drop_prob = 0.25;
    config.rounds = 8;
    config.phase_timeout = Duration::from_millis(1500);
    let outcome = Deployment::run(config);
    assert_eq!(outcome.rounds.len(), 8, "server must finish every round despite losses");
    assert!(outcome.messages_dropped > 0, "loss simulation inactive");
    // Some rounds proceed with fewer updates/votes than requested.
    assert!(
        outcome.rounds.iter().any(|r| r.updates_received < 4 || r.votes_received < 4),
        "no round observed a dropout: {:?}",
        outcome.rounds
    );
}

#[test]
fn incremental_history_shipping_shrinks_over_time() {
    let mut config = DeploymentConfig::small(5);
    config.malicious_clients = 0;
    config.rounds = 12;
    let outcome = Deployment::run(config);
    // Early rounds ship little (history is short); mid rounds ship the
    // full window to first-time validators; once every client has been a
    // validator, deltas shrink again. Check total shipped stays well
    // below the ship-everything-to-everyone worst case.
    let shipped: usize = outcome.rounds.iter().map(|r| r.history_bytes_shipped).sum();
    let model_bytes = 12 + 4 * (32 * 16 + 16 + 16 * 10 + 10);
    let worst_case = outcome.rounds.len() * 4 * 5 * model_bytes; // rounds × validators × window
    assert!(shipped > 0);
    assert!(shipped < worst_case, "incremental shipping saved nothing: {shipped} vs {worst_case}");
}

#[test]
fn bootstrap_phase_excludes_untrusted_contributors() {
    // With the trust-bootstrapping phase covering the whole run, the
    // attacker never contributes: no injections, no backdoor.
    let mut config = DeploymentConfig::small(7);
    config.rounds = 8;
    config.bootstrap_rounds = 8;
    let outcome = Deployment::run(config);
    assert!(
        outcome.final_backdoor_accuracy < 0.3,
        "backdoor appeared during bootstrap: {}",
        outcome.final_backdoor_accuracy
    );
    let accepted = outcome.rounds.iter().filter(|r| r.accepted).count();
    assert!(accepted >= 7, "bootstrap rounds should be clean: {accepted}/8 accepted");
}

#[test]
fn deployment_is_reproducible_for_a_fixed_seed() {
    let a = Deployment::run(DeploymentConfig::small(6));
    let b = Deployment::run(DeploymentConfig::small(6));
    let da: Vec<bool> = a.rounds.iter().map(|r| r.accepted).collect();
    let db: Vec<bool> = b.rounds.iter().map(|r| r.accepted).collect();
    assert_eq!(da, db, "decisions diverged across identical runs");
    assert_eq!(a.final_main_accuracy, b.final_main_accuracy);
}
